// Package exec is SoD²'s graph executor: it runs a computational graph
// over concrete tensors in a chosen operator order, executes the
// control-flow operators (<Switch, Combine>, If, Loop), tracks live
// intermediate-result memory (the quantity Table 5 reports), and emits a
// per-operator trace that the device cost model converts into latency.
package exec

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/kernels"
	"repro/internal/tensor"
)

// DefaultMaxLoopIters caps Loop trip counts when Options.MaxLoopIters
// is unset: a runaway or corrupted trip-count tensor returns an error
// instead of hanging the inference.
const DefaultMaxLoopIters = 1_000_000

// Hooks intercept execution at well-defined points. They exist for the
// guarded-execution subsystem and the deterministic fault-injection
// harness; nil hooks cost nothing. Hooks propagate into If/Loop bodies.
type Hooks struct {
	// PreKernel runs before each non-control-flow operator's kernel; a
	// non-nil error aborts the inference (wrapped in *guard.OpError).
	PreKernel func(n *graph.Node, in []*tensor.Tensor) error
	// PostKernel runs after a kernel succeeds and may mutate the
	// freshly produced outputs (fault injection); a non-nil error
	// aborts the inference.
	PostKernel func(n *graph.Node, out []*tensor.Tensor) error
	// OnAlloc observes every intermediate-tensor allocation; a non-nil
	// error aborts the inference (the fault injector's OOM mode).
	OnAlloc func(name string, bytes int64) error
}

// OpEvent records one executed operator for the cost model.
type OpEvent struct {
	Node      *graph.Node
	OpType    string
	InShapes  [][]int64
	OutShapes [][]int64
	// InNames/OutNames align with InShapes/OutShapes (only values that
	// were actually present/produced appear).
	InNames  []string
	OutNames []string
	// OutBytes aligns with OutNames: exact payload sizes.
	OutBytes []int64
	// Skipped marks operators on untaken control-flow paths that a
	// baseline framework still "executes" under the execute-all policy.
	Skipped bool
}

// Trace is the ordered record of one inference.
type Trace struct {
	Events []OpEvent
	// PeakLiveBytes is the maximum concurrently-live intermediate-result
	// footprint under precise liveness (free-at-last-use).
	PeakLiveBytes int64
	// TotalAllocBytes is the sum of all intermediate allocations.
	TotalAllocBytes int64
	// AllocCount is the number of buffer allocations performed.
	AllocCount int64
}

// Options configure one execution.
type Options struct {
	// Order overrides the execution order (must be a valid topological
	// order of the graph's nodes). Nil means graph topo order.
	Order []*graph.Node
	// ExecuteAllBranches mimics the baseline frameworks' control-flow
	// policy (§2): run every Switch/If path and strip invalid results.
	ExecuteAllBranches bool
	// NoFree disables free-at-last-use, modeling frameworks that hold
	// every intermediate until the end of the inference.
	NoFree bool
	// Arena, when non-nil, stores planned float32 intermediates at their
	// assigned offsets in one backing buffer (§4.4.1's runtime plan).
	Arena *Arena
	// MaxLoopIters caps Loop trip counts (DefaultMaxLoopIters when 0).
	MaxLoopIters int64
	// Ctx, when non-nil, is checked before every operator (including
	// inside If/Loop bodies): cancellation or deadline expiry aborts
	// the inference with the context's error.
	Ctx context.Context
	// Hooks, when non-nil, intercept kernel and allocation events.
	// Under wavefront execution (Waves/Workers below) PreKernel and
	// PostKernel run concurrently from pool workers and must be safe
	// for concurrent use; OnAlloc stays sequential (wave barrier).
	Hooks *Hooks
	// Waves, when non-nil together with Workers > 1, partitions Order
	// into contiguous dependency wavefronts (flattening Waves must
	// reproduce Order exactly). The kernels of one wave run concurrently
	// on a persistent worker pool; all bookkeeping (values, trace,
	// liveness accounting, frees) happens sequentially in planned order
	// at the wave barrier, so outputs and traces are bit-identical to
	// sequential execution. If an Arena is set, its offsets must come
	// from a wave-widened memory plan (memplan.WidenWaves) — per-step
	// offsets may overlap across a wave.
	Waves [][]*graph.Node
	// Workers sizes the wavefront worker pool (<=1 disables it). Solo
	// waves and control-flow ops run inline with the full budget as
	// intra-op threads; a wave of width w gives each kernel
	// max(1, Workers/w) intra-op threads.
	Workers int
}

// subOptions derives the options an If/Loop body run inherits. Waves and
// Workers are intentionally dropped: wavefronts are planned for the top
// level only, and control-flow bodies run sequentially inside their
// (solo-wave) parent op.
func (o Options) subOptions() Options {
	return Options{
		ExecuteAllBranches: o.ExecuteAllBranches,
		NoFree:             o.NoFree,
		MaxLoopIters:       o.MaxLoopIters,
		Ctx:                o.Ctx,
		Hooks:              o.Hooks,
	}
}

// Result bundles the outputs and the trace of one inference.
type Result struct {
	Outputs map[string]*tensor.Tensor
	Trace   Trace
}

// Run executes g over the named inputs.
func Run(g *graph.Graph, inputs map[string]*tensor.Tensor, opts Options) (*Result, error) {
	ex := &executor{g: g, opts: opts, values: map[string]*tensor.Tensor{}, res: &Result{}}
	return ex.run(inputs)
}

type executor struct {
	g      *graph.Graph
	opts   Options
	values map[string]*tensor.Tensor
	res    *Result

	liveBytes int64
	refCount  map[string]int
	isOutput  map[string]bool
	// invalid marks values derived from untaken Switch branches under
	// the execute-all policy; Combine strips them (§2: "execution of all
	// possible paths, and stripping out invalid results").
	invalid map[string]bool
	// soloThreads is the intra-op thread budget for kernels executed
	// inline (solo waves get the whole worker budget); 0 means 1.
	soloThreads int
}

func (ex *executor) run(inputs map[string]*tensor.Tensor) (*Result, error) {
	g := ex.g
	order := ex.opts.Order
	if order == nil {
		var err error
		order, err = g.TopoSort()
		if err != nil {
			return nil, err
		}
	}

	// Reference counts for free-at-last-use.
	ex.refCount = map[string]int{}
	ex.isOutput = map[string]bool{}
	ex.invalid = map[string]bool{}
	for _, o := range g.Outputs {
		ex.isOutput[o] = true
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if in != "" {
				ex.refCount[in]++
			}
		}
	}

	for _, in := range g.Inputs {
		t, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("exec: missing input %q", in.Name)
		}
		ex.values[in.Name] = t
	}
	for name, t := range g.Initializers {
		ex.values[name] = t
	}

	if len(ex.opts.Waves) > 0 && ex.opts.Workers > 1 {
		if err := ex.runWaves(order); err != nil {
			return nil, err
		}
	} else {
		for _, n := range order {
			if err := ex.checkCtx(n); err != nil {
				return nil, err
			}
			if err := ex.safeExec(n); err != nil {
				return nil, err
			}
		}
	}

	ex.res.Outputs = map[string]*tensor.Tensor{}
	for _, o := range g.Outputs {
		ex.res.Outputs[o] = ex.values[o]
	}
	return ex.res, nil
}

// checkCtx aborts the inference when the per-inference context is done.
func (ex *executor) checkCtx(n *graph.Node) error {
	if ex.opts.Ctx == nil {
		return nil
	}
	select {
	case <-ex.opts.Ctx.Done():
		if n != nil {
			return fmt.Errorf("exec: inference cancelled before node %s: %w", n.Name, ex.opts.Ctx.Err())
		}
		return fmt.Errorf("exec: inference cancelled: %w", ex.opts.Ctx.Err())
	default:
		return nil
	}
}

// safeExec contains panics at the per-node boundary, converting them
// into structured *guard.OpError values: a buggy kernel or a malformed
// subgraph fails the inference, never the process.
func (ex *executor) safeExec(n *graph.Node) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &guard.OpError{Node: n.Name, Op: n.OpType,
				Cause: fmt.Errorf("%w: %v", guard.ErrPanic, r)}
		}
	}()
	return ex.execNode(n)
}

// runKernel executes a node's kernel with hook interception,
// per-kernel panic containment, and an intra-op thread budget. Every
// failure surfaces as *guard.OpError. Safe for concurrent use by wave
// workers: it only reads executor state.
func (ex *executor) runKernel(n *graph.Node, in []*tensor.Tensor, threads int) (out []*tensor.Tensor, err error) {
	shapes := func() [][]int64 {
		var s [][]int64
		for _, t := range in {
			if t != nil {
				s = append(s, t.Shape)
			}
		}
		return s
	}
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &guard.OpError{Node: n.Name, Op: n.OpType, InputShapes: shapes(),
				Cause: fmt.Errorf("%w: %v", guard.ErrPanic, r)}
		}
	}()
	if h := ex.opts.Hooks; h != nil && h.PreKernel != nil {
		if herr := h.PreKernel(n, in); herr != nil {
			return nil, &guard.OpError{Node: n.Name, Op: n.OpType, InputShapes: shapes(), Cause: herr}
		}
	}
	out, kerr := kernels.RunWithBudget(n, in, threads)
	if kerr != nil {
		return nil, &guard.OpError{Node: n.Name, Op: n.OpType, InputShapes: shapes(), Cause: kerr}
	}
	if h := ex.opts.Hooks; h != nil && h.PostKernel != nil {
		if herr := h.PostKernel(n, out); herr != nil {
			return nil, &guard.OpError{Node: n.Name, Op: n.OpType, InputShapes: shapes(), Cause: herr}
		}
	}
	return out, nil
}

// account registers freshly produced intermediates and updates the peak.
func (ex *executor) account(names []string, ts []*tensor.Tensor) error {
	for i, name := range names {
		if name == "" || i >= len(ts) || ts[i] == nil {
			continue
		}
		b := ts[i].Bytes()
		if h := ex.opts.Hooks; h != nil && h.OnAlloc != nil {
			if err := h.OnAlloc(name, b); err != nil {
				return fmt.Errorf("exec: alloc %s (%d bytes): %w", name, b, err)
			}
		}
		ex.liveBytes += b
		ex.res.Trace.TotalAllocBytes += b
		ex.res.Trace.AllocCount++
	}
	if ex.liveBytes > ex.res.Trace.PeakLiveBytes {
		ex.res.Trace.PeakLiveBytes = ex.liveBytes
	}
	return nil
}

// release decrements uses of the node's inputs, freeing dead values.
func (ex *executor) release(n *graph.Node) {
	if ex.opts.NoFree {
		return
	}
	seen := map[string]bool{}
	for _, in := range n.Inputs {
		if in == "" || seen[in] {
			continue
		}
		seen[in] = true
		ex.refCount[in]--
		if ex.refCount[in] <= 0 && !ex.isOutput[in] && !ex.isConstantOrInput(in) {
			if t := ex.values[in]; t != nil {
				ex.liveBytes -= t.Bytes()
			}
			delete(ex.values, in)
		}
	}
}

func (ex *executor) isConstantOrInput(name string) bool {
	if _, ok := ex.g.Initializers[name]; ok {
		return true
	}
	return ex.g.IsGraphInput(name)
}

func (ex *executor) gatherInputs(n *graph.Node) ([]*tensor.Tensor, bool) {
	in := make([]*tensor.Tensor, len(n.Inputs))
	allPresent := true
	for i, name := range n.Inputs {
		if name == "" {
			continue
		}
		t, ok := ex.values[name]
		if !ok || t == nil {
			allPresent = false
			continue
		}
		in[i] = t
	}
	return in, allPresent
}

func (ex *executor) emit(n *graph.Node, in, out []*tensor.Tensor, skipped bool) {
	ev := OpEvent{Node: n, OpType: n.OpType, Skipped: skipped}
	for i, t := range in {
		if t != nil {
			ev.InShapes = append(ev.InShapes, t.Shape)
			if i < len(n.Inputs) {
				ev.InNames = append(ev.InNames, n.Inputs[i])
			} else {
				ev.InNames = append(ev.InNames, "")
			}
		}
	}
	for i, t := range out {
		if t != nil {
			ev.OutShapes = append(ev.OutShapes, t.Shape)
			ev.OutBytes = append(ev.OutBytes, t.Bytes())
			if i < len(n.Outputs) {
				ev.OutNames = append(ev.OutNames, n.Outputs[i])
			} else {
				ev.OutNames = append(ev.OutNames, "")
			}
		}
	}
	ex.res.Trace.Events = append(ex.res.Trace.Events, ev)
}

func (ex *executor) execNode(n *graph.Node) error {
	switch n.OpType {
	case "Switch":
		return ex.execSwitch(n)
	case "Combine":
		return ex.execCombine(n)
	case "If":
		return ex.execIf(n)
	case "Loop":
		return ex.execLoop(n)
	}

	in, allPresent := ex.gatherInputs(n)
	if !allPresent {
		// Dead path (untaken Switch branch): propagate absence.
		ex.emit(n, nil, nil, true)
		ex.release(n)
		return nil
	}
	threads := ex.soloThreads
	if threads < 1 {
		threads = 1
	}
	out, err := ex.runKernel(n, in, threads)
	if err != nil {
		return err
	}
	// Invalidity propagates: a result computed from an untaken branch's
	// value is itself invalid (but was still executed and costed).
	tainted := false
	for _, name := range n.Inputs {
		if name != "" && ex.invalid[name] {
			tainted = true
			break
		}
	}
	for i, name := range n.Outputs {
		if name == "" || i >= len(out) {
			continue
		}
		placed, perr := ex.opts.Arena.place(name, out[i])
		if perr != nil {
			return perr
		}
		out[i] = placed
		ex.values[name] = placed
		if tainted {
			ex.invalid[name] = true
		}
	}
	ex.emit(n, in, out, false)
	if err := ex.account(n.Outputs, out); err != nil {
		return err
	}
	ex.release(n)
	return nil
}

// truthy interprets a scalar predicate tensor.
func truthy(t *tensor.Tensor) bool {
	if t == nil || t.Len() == 0 {
		return false
	}
	switch t.DType {
	case tensor.Bool:
		return t.B[0]
	case tensor.Int64:
		return t.I[0] != 0
	default:
		return t.F[0] > 0.5
	}
}

// predIndex interprets the predicate as a branch index for multi-way
// Switch nodes.
func predIndex(t *tensor.Tensor, nOut int) int {
	var idx int
	switch t.DType {
	case tensor.Bool:
		if t.B[0] {
			idx = 0
		} else {
			idx = nOut - 1
		}
	case tensor.Int64:
		idx = int(t.I[0])
	default:
		if nOut == 2 {
			if t.F[0] > 0.5 {
				idx = 0
			} else {
				idx = 1
			}
		} else {
			idx = int(t.F[0])
		}
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= nOut {
		idx = nOut - 1
	}
	return idx
}

// execSwitch routes the data input to the predicate-selected output (or
// to every output under the execute-all policy).
func (ex *executor) execSwitch(n *graph.Node) error {
	in, allPresent := ex.gatherInputs(n)
	if !allPresent || len(in) < 2 {
		ex.emit(n, nil, nil, true)
		ex.release(n)
		return nil
	}
	pred, data := in[0], in[1]
	taken := predIndex(pred, len(n.Outputs))
	out := make([]*tensor.Tensor, len(n.Outputs))
	for i, name := range n.Outputs {
		if name == "" {
			continue
		}
		if i == taken || ex.opts.ExecuteAllBranches {
			// Each routed output is a fresh logical tensor: baselines
			// copy; SoD² only aliases the taken path, but we account a
			// copy for both for comparability of the data movement.
			out[i] = data.Clone()
			ex.values[name] = out[i]
			if i != taken {
				ex.invalid[name] = true
			}
		}
	}
	ex.emit(n, in, out, false)
	if err := ex.account(n.Outputs, out); err != nil {
		return err
	}
	ex.release(n)
	return nil
}

// execCombine merges branch results: the first present input wins (under
// execute-all, invalid results are "stripped" — only the taken path's
// value is forwarded by convention of input order set by Switch).
func (ex *executor) execCombine(n *graph.Node) error {
	in, _ := ex.gatherInputs(n)
	var chosen *tensor.Tensor
	for i, t := range in {
		if t != nil && !ex.invalid[n.Inputs[i]] {
			chosen = t
			break
		}
	}
	if chosen == nil {
		// All branches invalid (should not happen): fall back to the
		// first materialized result.
		for _, t := range in {
			if t != nil {
				chosen = t
				break
			}
		}
	}
	if chosen == nil {
		return fmt.Errorf("exec: Combine %s has no live branch", n.Name)
	}
	out := chosen.Clone()
	ex.values[n.Outputs[0]] = out
	ex.emit(n, in, []*tensor.Tensor{out}, false)
	if err := ex.account(n.Outputs, []*tensor.Tensor{out}); err != nil {
		return err
	}
	ex.release(n)
	return nil
}

func (ex *executor) execIf(n *graph.Node) error {
	in, allPresent := ex.gatherInputs(n)
	if !allPresent {
		ex.emit(n, nil, nil, true)
		ex.release(n)
		return nil
	}
	thenG := n.AttrGraph("then_branch")
	elseG := n.AttrGraph("else_branch")
	if thenG == nil || elseG == nil {
		return fmt.Errorf("exec: If %s missing branches", n.Name)
	}
	runBranch := func(body *graph.Graph) (*Result, error) {
		bindings := map[string]*tensor.Tensor{}
		for i, bin := range body.Inputs {
			if i+1 < len(in) && in[i+1] != nil {
				bindings[bin.Name] = in[i+1]
			}
		}
		return Run(body, bindings, ex.opts.subOptions())
	}
	cond := truthy(in[0])
	var chosen *Result
	var err error
	if ex.opts.ExecuteAllBranches {
		thenRes, errT := runBranch(thenG)
		elseRes, errE := runBranch(elseG)
		if errT != nil {
			return errT
		}
		if errE != nil {
			return errE
		}
		ex.absorb(thenRes)
		ex.absorb(elseRes)
		if cond {
			chosen = thenRes
		} else {
			chosen = elseRes
		}
	} else {
		if cond {
			chosen, err = runBranch(thenG)
		} else {
			chosen, err = runBranch(elseG)
		}
		if err != nil {
			return err
		}
		ex.absorb(chosen)
	}
	body := thenG
	if !cond {
		body = elseG
	}
	outs := make([]*tensor.Tensor, len(n.Outputs))
	for i, name := range n.Outputs {
		if name == "" || i >= len(body.Outputs) {
			continue
		}
		outs[i] = chosen.Outputs[body.Outputs[i]]
		ex.values[name] = outs[i]
	}
	ex.emit(n, in, outs, false)
	if err := ex.account(n.Outputs, outs); err != nil {
		return err
	}
	ex.release(n)
	return nil
}

// absorb folds a subgraph run's trace into the parent's accounting.
func (ex *executor) absorb(r *Result) {
	ex.res.Trace.Events = append(ex.res.Trace.Events, r.Trace.Events...)
	ex.res.Trace.TotalAllocBytes += r.Trace.TotalAllocBytes
	ex.res.Trace.AllocCount += r.Trace.AllocCount
	if ex.liveBytes+r.Trace.PeakLiveBytes > ex.res.Trace.PeakLiveBytes {
		ex.res.Trace.PeakLiveBytes = ex.liveBytes + r.Trace.PeakLiveBytes
	}
}

func (ex *executor) execLoop(n *graph.Node) error {
	in, allPresent := ex.gatherInputs(n)
	if !allPresent {
		ex.emit(n, nil, nil, true)
		ex.release(n)
		return nil
	}
	body := n.AttrGraph("body")
	if body == nil {
		return fmt.Errorf("exec: Loop %s missing body", n.Name)
	}
	maxTrip := int64(1 << 30)
	if in[0] != nil && in[0].Len() > 0 {
		maxTrip = in[0].I[0]
	}
	cond := true
	if in[1] != nil {
		cond = truthy(in[1])
	}
	limit := ex.opts.MaxLoopIters
	if limit <= 0 {
		limit = DefaultMaxLoopIters
	}
	// A specializer-proven per-loop trip bound tightens the global
	// runaway guard to the loop's own static maximum; it never loosens a
	// caller-imposed MaxLoopIters.
	if static := n.AttrInt("static_max_trip", 0); static > 0 && static < limit {
		limit = static
	}
	carried := make([]*tensor.Tensor, len(in)-2)
	copy(carried, in[2:])
	for iter := int64(0); iter < maxTrip && cond; iter++ {
		if iter >= limit {
			return fmt.Errorf("exec: Loop %s exceeded MaxLoopIters=%d (trip count %d)", n.Name, limit, maxTrip)
		}
		if err := ex.checkCtx(n); err != nil {
			return err
		}
		bindings := map[string]*tensor.Tensor{}
		for i, bin := range body.Inputs {
			switch i {
			case 0:
				bindings[bin.Name] = tensor.ScalarInt(iter)
			case 1:
				bindings[bin.Name] = tensor.ScalarBool(cond)
			default:
				if i-2 < len(carried) {
					bindings[bin.Name] = carried[i-2]
				}
			}
		}
		r, err := Run(body, bindings, ex.opts.subOptions())
		if err != nil {
			return err
		}
		ex.absorb(r)
		cond = truthy(r.Outputs[body.Outputs[0]])
		for i := range carried {
			if i+1 < len(body.Outputs) {
				carried[i] = r.Outputs[body.Outputs[i+1]]
			}
		}
	}
	outs := make([]*tensor.Tensor, len(n.Outputs))
	for i, name := range n.Outputs {
		if name == "" || i >= len(carried) {
			continue
		}
		outs[i] = carried[i]
		ex.values[name] = outs[i]
	}
	ex.emit(n, in, outs, false)
	if err := ex.account(n.Outputs, outs); err != nil {
		return err
	}
	ex.release(n)
	return nil
}
