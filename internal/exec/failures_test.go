package exec

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/tensor"
)

// Failure injection: malformed graphs and runtime shape violations must
// surface as errors, never as panics or silent corruption.

func TestKernelErrorPropagates(t *testing.T) {
	g := graph.New("bad")
	g.AddInput("x", tensor.Float32, lattice.FromInts(2, 3))
	g.AddInput("y", tensor.Float32, lattice.FromInts(4, 5))
	g.Op("MatMul", "mm", []string{"x", "y"}, []string{"z"}, nil) // inner dims mismatch
	g.AddOutput("z")
	_, err := Run(g, map[string]*tensor.Tensor{
		"x": tensor.New(tensor.Float32, 2, 3),
		"y": tensor.New(tensor.Float32, 4, 5),
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "MatMul") {
		t.Errorf("want MatMul shape error, got %v", err)
	}
}

func TestUnknownOpErrors(t *testing.T) {
	g := graph.New("unknown")
	g.AddInput("x", tensor.Float32, lattice.FromInts(2))
	g.Op("FancyCustomOp", "f", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 2)}, Options{})
	if err == nil || !strings.Contains(err.Error(), "no kernel") {
		t.Errorf("want no-kernel error, got %v", err)
	}
}

func TestBroadcastViolationErrors(t *testing.T) {
	g := graph.New("bcast")
	g.AddInput("a", tensor.Float32, lattice.FromInts(3))
	g.AddInput("b", tensor.Float32, lattice.FromInts(4))
	g.Op("Add", "add", []string{"a", "b"}, []string{"c"}, nil)
	g.AddOutput("c")
	_, err := Run(g, map[string]*tensor.Tensor{
		"a": tensor.New(tensor.Float32, 3),
		"b": tensor.New(tensor.Float32, 4),
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "broadcast") {
		t.Errorf("want broadcast error, got %v", err)
	}
}

func TestIfMissingBranchErrors(t *testing.T) {
	g := graph.New("noif")
	g.AddInput("c", tensor.Bool, lattice.FromInts())
	g.AddInput("x", tensor.Float32, lattice.FromInts(1))
	g.Op("If", "if1", []string{"c", "x"}, []string{"y"}, nil) // no branches
	g.AddOutput("y")
	_, err := Run(g, map[string]*tensor.Tensor{
		"c": tensor.ScalarBool(true), "x": tensor.New(tensor.Float32, 1)}, Options{})
	if err == nil || !strings.Contains(err.Error(), "missing branches") {
		t.Errorf("want missing-branches error, got %v", err)
	}
}

func TestLoopMissingBodyErrors(t *testing.T) {
	g := graph.New("noloop")
	g.AddInitializer("trip", tensor.ScalarInt(1))
	g.AddInitializer("cond", tensor.ScalarBool(true))
	g.AddInput("x", tensor.Float32, lattice.FromInts(1))
	g.Op("Loop", "lp", []string{"trip", "cond", "x"}, []string{"y"}, nil)
	g.AddOutput("y")
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 1)}, Options{})
	if err == nil || !strings.Contains(err.Error(), "missing body") {
		t.Errorf("want missing-body error, got %v", err)
	}
}

func TestArenaTooSmallErrors(t *testing.T) {
	g := graph.New("arena")
	g.AddInput("x", tensor.Float32, lattice.FromInts(8))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	arena := NewArena(map[string]int64{"y": 0}, 4) // 1 float for 8 floats
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 8)},
		Options{Arena: arena})
	if err == nil || !strings.Contains(err.Error(), "exceeds arena") {
		t.Errorf("want arena-overflow error, got %v", err)
	}
}

func TestArenaMisalignedOffsetErrors(t *testing.T) {
	g := graph.New("align")
	g.AddInput("x", tensor.Float32, lattice.FromInts(2))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	arena := NewArena(map[string]int64{"y": 2}, 64)
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 2)},
		Options{Arena: arena})
	if err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Errorf("want alignment error, got %v", err)
	}
}

func TestArenaPassthroughForUnplannedValues(t *testing.T) {
	g := graph.New("passthrough")
	g.AddInput("x", tensor.Float32, lattice.FromInts(4))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.Op("Shape", "s", []string{"y"}, []string{"yshape"}, nil) // int64 output
	g.AddOutput("y")
	g.AddOutput("yshape")
	arena := NewArena(map[string]int64{"y": 0}, 64)
	res, err := Run(g, map[string]*tensor.Tensor{
		"x": tensor.FromFloats([]int64{4}, []float32{-1, 2, -3, 4})}, Options{Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"].F[1] != 2 {
		t.Errorf("y = %v", res.Outputs["y"].F)
	}
	if res.Outputs["yshape"].I[0] != 4 {
		t.Errorf("yshape = %v", res.Outputs["yshape"].I)
	}
}

func TestGatherIndexOutOfRange(t *testing.T) {
	g := graph.New("oob")
	g.AddInput("x", tensor.Float32, lattice.FromInts(3))
	g.AddInitializer("idx", tensor.FromInts([]int64{1}, []int64{7}))
	g.Op("Gather", "gg", []string{"x", "idx"}, []string{"y"}, nil)
	g.AddOutput("y")
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 3)}, Options{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want index error, got %v", err)
	}
}
