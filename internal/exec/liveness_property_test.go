package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/staticverify"
	"repro/internal/tensor"
)

// Property test for the static liveness proof: on random DAGs of
// shape-preserving operators, the intervals staticverify.Liveness derives
// from the schedule alone must equal the birth/last-touch steps observed
// in an instrumented execution trace. This extends the failure-injection
// harness above with a positive property — the static analysis never
// over- or under-approximates what the runtime actually does.

// randomDAG builds a random DAG where every value is a [2,3] float32
// tensor, so any wiring of elementwise unary/binary ops is valid.
func randomDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New("prop")
	g.AddInput("x0", tensor.Float32, lattice.FromInts(2, 3))
	g.AddInput("x1", tensor.Float32, lattice.FromInts(2, 3))
	vals := []string{"x0", "x1"}
	unary := []string{"Relu", "Sigmoid", "Abs", "Exp", "Tanh"}
	binary := []string{"Add", "Mul", "Sub", "Max"}
	n := 3 + rng.Intn(10)
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("v%d", i)
		name := fmt.Sprintf("n%d", i)
		if rng.Intn(3) == 0 {
			op := unary[rng.Intn(len(unary))]
			g.Op(op, name, []string{vals[rng.Intn(len(vals))]}, []string{out}, nil)
		} else {
			op := binary[rng.Intn(len(binary))]
			a, b := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
			g.Op(op, name, []string{a, b}, []string{out}, nil)
		}
		vals = append(vals, out)
	}
	// The final value is always an output; sometimes an earlier
	// intermediate too, exercising the keep-alive extension. Values that
	// end up never consumed exercise the die-at-birth case.
	g.AddOutput(fmt.Sprintf("v%d", n-1))
	if n > 1 && rng.Intn(2) == 0 {
		g.AddOutput(fmt.Sprintf("v%d", rng.Intn(n-1)))
	}
	return g
}

// observedIntervals replays a trace into per-value live intervals: birth
// at the producing event, death at the last consuming event, with graph
// outputs extended to the final step (the runtime holds them to return
// them — the same rule the static analysis applies).
func observedIntervals(g *graph.Graph, tr Trace) map[string]staticverify.LifeInterval {
	obs := map[string]staticverify.LifeInterval{}
	for step, ev := range tr.Events {
		for _, in := range ev.InNames {
			if iv, ok := obs[in]; ok {
				iv.Death = step
				obs[in] = iv
			}
		}
		for _, o := range ev.OutNames {
			obs[o] = staticverify.LifeInterval{Birth: step, Death: step}
		}
	}
	last := len(tr.Events) - 1
	for _, o := range g.Outputs {
		if iv, ok := obs[o]; ok && iv.Death < last {
			iv.Death = last
			obs[o] = iv
		}
	}
	return obs
}

func TestLivenessMatchesExecution(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := randomDAG(rng)
		order, err := g.TopoSort()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		static, diags := staticverify.Liveness(g, order)
		if len(diags) != 0 {
			t.Fatalf("trial %d: valid topo order raised diagnostics: %v", trial, diags)
		}

		res, err := Run(g, map[string]*tensor.Tensor{
			"x0": tensor.RandomFloats(tensor.NewRNG(uint64(trial)), 1, 2, 3),
			"x1": tensor.RandomFloats(tensor.NewRNG(uint64(trial)+1), 1, 2, 3),
		}, Options{Order: order})
		if err != nil {
			t.Fatalf("trial %d: exec failed: %v", trial, err)
		}
		if len(res.Trace.Events) != len(order) {
			t.Fatalf("trial %d: %d trace events for %d scheduled ops",
				trial, len(res.Trace.Events), len(order))
		}

		obs := observedIntervals(g, res.Trace)
		if len(obs) != len(static) {
			t.Fatalf("trial %d: static tracks %d values, execution touched %d",
				trial, len(static), len(obs))
		}
		for name, want := range obs {
			if got, ok := static[name]; !ok || got != want {
				t.Errorf("trial %d: value %s static interval %+v, observed %+v\n%s",
					trial, name, static[name], want, g.DOT())
			}
		}
	}
}
