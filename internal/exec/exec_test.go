package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/tensor"
)

func TestRunChain(t *testing.T) {
	g := graph.New("chain")
	g.AddInput("x", tensor.Float32, lattice.FromInts(1, 4))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.Op("Sigmoid", "s", []string{"y"}, []string{"z"}, nil)
	g.AddOutput("z")
	res, err := Run(g, map[string]*tensor.Tensor{
		"x": tensor.FromFloats([]int64{1, 4}, []float32{-1, 0, 1, 100}),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := res.Outputs["z"]
	if z.F[0] != 0.5 || z.F[1] != 0.5 || z.F[3] < 0.99 {
		t.Errorf("z = %v", z.F)
	}
	if len(res.Trace.Events) != 2 {
		t.Errorf("events = %d", len(res.Trace.Events))
	}
	if res.Trace.PeakLiveBytes <= 0 || res.Trace.TotalAllocBytes < res.Trace.PeakLiveBytes {
		t.Errorf("peak=%d total=%d", res.Trace.PeakLiveBytes, res.Trace.TotalAllocBytes)
	}
}

func TestMissingInput(t *testing.T) {
	g := graph.New("m")
	g.AddInput("x", tensor.Float32, lattice.FromInts(1))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	if _, err := Run(g, nil, Options{}); err == nil {
		t.Error("expected missing-input error")
	}
}

func TestFreeAtLastUseReducesPeak(t *testing.T) {
	// Long chain: with freeing, peak is ~2 tensors; without, ~N tensors.
	g := graph.New("long")
	g.AddInput("x", tensor.Float32, lattice.FromInts(1024))
	prev := "x"
	for i := 0; i < 10; i++ {
		out := prev + "r"
		g.Op("Relu", out+"n", []string{prev}, []string{out}, nil)
		prev = out
	}
	g.AddOutput(prev)
	in := map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 1024)}
	withFree, err := Run(g, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noFree, err := Run(g, in, Options{NoFree: true})
	if err != nil {
		t.Fatal(err)
	}
	if withFree.Trace.PeakLiveBytes >= noFree.Trace.PeakLiveBytes {
		t.Errorf("free=%d nofree=%d", withFree.Trace.PeakLiveBytes, noFree.Trace.PeakLiveBytes)
	}
	if noFree.Trace.PeakLiveBytes != 10*1024*4 {
		t.Errorf("nofree peak = %d", noFree.Trace.PeakLiveBytes)
	}
}

func gatedGraph() *graph.Graph {
	g := graph.New("gated")
	g.AddInput("x", tensor.Float32, lattice.FromInts(1, 4))
	g.AddInput("gate", tensor.Float32, lattice.FromInts())
	g.Op("Switch", "sw", []string{"gate", "x"}, []string{"a", "b"}, nil)
	g.Op("Relu", "blk", []string{"a"}, []string{"a2"}, nil)
	g.Op("Neg", "skip", []string{"b"}, []string{"b2"}, nil)
	g.Op("Combine", "cb", []string{"a2", "b2"}, []string{"out"}, nil)
	g.AddOutput("out")
	return g
}

func TestSwitchTakesPredicatedPath(t *testing.T) {
	g := gatedGraph()
	x := tensor.FromFloats([]int64{1, 4}, []float32{-1, 2, -3, 4})

	// gate > 0.5: path a (Relu)
	res, err := Run(g, map[string]*tensor.Tensor{"x": x, "gate": tensor.Scalar(1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs["out"]
	if out.F[0] != 0 || out.F[1] != 2 {
		t.Errorf("relu path = %v", out.F)
	}
	// The untaken Neg must be recorded as skipped.
	var skipped int
	for _, e := range res.Trace.Events {
		if e.Skipped {
			skipped++
		}
	}
	if skipped != 1 {
		t.Errorf("skipped = %d", skipped)
	}

	// gate <= 0.5: path b (Neg)
	res2, err := Run(g, map[string]*tensor.Tensor{"x": x, "gate": tensor.Scalar(0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outputs["out"].F[0] != 1 {
		t.Errorf("neg path = %v", res2.Outputs["out"].F)
	}
}

func TestExecuteAllBranchesRunsBoth(t *testing.T) {
	g := gatedGraph()
	x := tensor.FromFloats([]int64{1, 4}, []float32{-1, 2, -3, 4})
	res, err := Run(g, map[string]*tensor.Tensor{"x": x, "gate": tensor.Scalar(1)},
		Options{ExecuteAllBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events {
		if e.Skipped {
			t.Errorf("execute-all should not skip %s", e.Node.Name)
		}
	}
	// Result must still come from the taken path.
	if res.Outputs["out"].F[1] != 2 {
		t.Errorf("out = %v", res.Outputs["out"].F)
	}
	// Execute-all costs more memory than predicated execution.
	pred, _ := Run(g, map[string]*tensor.Tensor{"x": x, "gate": tensor.Scalar(1)}, Options{})
	if res.Trace.TotalAllocBytes <= pred.Trace.TotalAllocBytes {
		t.Errorf("all=%d pred=%d", res.Trace.TotalAllocBytes, pred.Trace.TotalAllocBytes)
	}
}

func TestIfExecution(t *testing.T) {
	mkBody := func(name, op string) *graph.Graph {
		b := graph.New(name)
		b.AddInput("bx", tensor.Float32, lattice.UndefShape())
		b.Op(op, "bop", []string{"bx"}, []string{"by"}, nil)
		b.AddOutput("by")
		return b
	}
	g := graph.New("ifg")
	g.AddInput("cond", tensor.Bool, lattice.FromInts())
	g.AddInput("x", tensor.Float32, lattice.FromInts(2))
	g.Op("If", "if1", []string{"cond", "x"}, []string{"y"}, map[string]graph.AttrValue{
		"then_branch": graph.GraphAttr(mkBody("then", "Relu")),
		"else_branch": graph.GraphAttr(mkBody("else", "Neg")),
	})
	g.AddOutput("y")
	x := tensor.FromFloats([]int64{2}, []float32{-5, 3})

	rt, err := Run(g, map[string]*tensor.Tensor{"cond": tensor.ScalarBool(true), "x": x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Outputs["y"].F[0] != 0 || rt.Outputs["y"].F[1] != 3 {
		t.Errorf("then = %v", rt.Outputs["y"].F)
	}
	re, err := Run(g, map[string]*tensor.Tensor{"cond": tensor.ScalarBool(false), "x": x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Outputs["y"].F[0] != 5 {
		t.Errorf("else = %v", re.Outputs["y"].F)
	}

	// execute-all runs both branch bodies (2 events) vs 1 predicated.
	all, err := Run(g, map[string]*tensor.Tensor{"cond": tensor.ScalarBool(true), "x": x},
		Options{ExecuteAllBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Trace.Events) <= len(rt.Trace.Events) {
		t.Errorf("all events=%d predicated=%d", len(all.Trace.Events), len(rt.Trace.Events))
	}
}

func TestLoopExecution(t *testing.T) {
	body := graph.New("body")
	body.AddInput("i", tensor.Int64, lattice.FromInts())
	body.AddInput("cond_in", tensor.Bool, lattice.FromInts())
	body.AddInput("acc", tensor.Float32, lattice.FromInts(1))
	body.AddInitializer("one", tensor.FromFloats([]int64{1}, []float32{1}))
	body.Op("Identity", "ci", []string{"cond_in"}, []string{"cond_out"}, nil)
	body.Op("Add", "inc", []string{"acc", "one"}, []string{"acc_out"}, nil)
	body.AddOutput("cond_out")
	body.AddOutput("acc_out")

	g := graph.New("loopg")
	g.AddInitializer("trip", tensor.ScalarInt(5))
	g.AddInitializer("cond", tensor.ScalarBool(true))
	g.AddInput("x", tensor.Float32, lattice.FromInts(1))
	g.Op("Loop", "lp", []string{"trip", "cond", "x"}, []string{"y"}, map[string]graph.AttrValue{
		"body": graph.GraphAttr(body),
	})
	g.AddOutput("y")
	res, err := Run(g, map[string]*tensor.Tensor{"x": tensor.FromFloats([]int64{1}, []float32{0})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"].F[0] != 5 {
		t.Errorf("loop acc = %v", res.Outputs["y"].F)
	}
}

func TestCustomOrderRespected(t *testing.T) {
	g := graph.New("order")
	g.AddInput("x", tensor.Float32, lattice.FromInts(2))
	g.Op("Relu", "a", []string{"x"}, []string{"ya"}, nil)
	g.Op("Neg", "b", []string{"x"}, []string{"yb"}, nil)
	g.Op("Add", "c", []string{"ya", "yb"}, []string{"out"}, nil)
	g.AddOutput("out")
	sorted, _ := g.TopoSort()
	// Swap the two independent ops.
	order := []*graph.Node{sorted[1], sorted[0], sorted[2]}
	res, err := Run(g, map[string]*tensor.Tensor{"x": tensor.FromFloats([]int64{2}, []float32{1, -1})}, Options{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Events[0].Node.Name != order[0].Name {
		t.Errorf("order not respected: %s", res.Trace.Events[0].Node.Name)
	}
	if res.Outputs["out"].F[0] != 0 || res.Outputs["out"].F[1] != 1 {
		t.Errorf("out = %v", res.Outputs["out"].F)
	}
}

func TestShapeDrivenReshapePipeline(t *testing.T) {
	// Dynamic reshape driven by a Shape-computation subgraph executes
	// correctly for two different input lengths without re-building.
	g := graph.New("dynreshape")
	g.AddInput("x", tensor.Float32, lattice.Ranked(lattice.FromInt(1), lattice.FromSym("L"), lattice.FromInt(4)))
	g.AddInitializer("two", tensor.FromInts([]int64{1}, []int64{2}))
	g.AddInitializer("negone", tensor.FromInts([]int64{1}, []int64{-1}))
	g.Op("Shape", "shp", []string{"x"}, []string{"xs"}, nil)
	g.Op("Slice", "sl", []string{"xs", "one0", "two2", "zero0"}, []string{"lslice"}, nil)
	g.AddInitializer("one0", tensor.FromInts([]int64{1}, []int64{1}))
	g.AddInitializer("two2", tensor.FromInts([]int64{1}, []int64{2}))
	g.AddInitializer("zero0", tensor.FromInts([]int64{1}, []int64{0}))
	g.Op("Concat", "cat", []string{"lslice", "negone", "two"}, []string{"target"}, map[string]graph.AttrValue{
		"axis": graph.IntAttr(0)})
	g.Op("Reshape", "rs", []string{"x", "target"}, []string{"y"}, nil)
	g.AddOutput("y")

	for _, L := range []int64{3, 7} {
		x := tensor.New(tensor.Float32, 1, L, 4)
		res, err := Run(g, map[string]*tensor.Tensor{"x": x}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		y := res.Outputs["y"]
		if !tensor.SameShape(y.Shape, []int64{L, 2, 2}) {
			t.Errorf("L=%d: y shape = %v", L, y.Shape)
		}
	}
}
