// Wavefront parallel interpreter: runs the kernels of each statically
// planned wave concurrently on a persistent worker pool, then performs
// all bookkeeping sequentially in planned order at the wave barrier.
//
// Determinism argument (why parallel outputs are bit-identical to
// sequential execution):
//
//  1. Kernels are pure: they read their inputs and write freshly
//     allocated outputs; striped budgeted kernels write disjoint output
//     ranges with unchanged per-element arithmetic order.
//  2. Arena placement copies each output into its planned region. The
//     offsets come from a wave-widened memory plan
//     (memplan.WidenWaves + PeakFirst), whose disjointness proof covers
//     every pair of buffers live in the same wave — so concurrent
//     same-wave copies never touch a byte another wave member reads or
//     writes, for any interleaving. (HighWater is the one shared word;
//     it is a commutative max under a mutex.)
//  3. All observable bookkeeping — the values map, taint propagation,
//     trace events, liveness accounting, frees — happens sequentially
//     in planned order at the barrier, exactly as the sequential
//     interpreter would have done it.
//
// Error containment: a panic in any worker is converted to a typed
// *guard.OpError by the same recover boundary the sequential path uses;
// the wave is always drained before the error (first in planned order)
// is surfaced, so the pool never wedges and no goroutine leaks.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/tensor"
)

// waveJob is one kernel execution dispatched to the worker pool.
type waveJob struct {
	n       *graph.Node
	in      []*tensor.Tensor
	threads int

	// Filled by the worker.
	out []*tensor.Tensor
	err error

	wg *sync.WaitGroup
}

// run executes the job's kernel and places its outputs. It never
// panics: runKernel contains kernel panics, and the outer recover is a
// second boundary for placement/bookkeeping bugs, so the worker loop —
// and with it the pool — survives any job.
func (j *waveJob) run(ex *executor) {
	defer func() {
		if r := recover(); r != nil {
			j.out = nil
			j.err = &guard.OpError{Node: j.n.Name, Op: j.n.OpType,
				Cause: fmt.Errorf("%w: %v", guard.ErrPanic, r)}
		}
	}()
	if err := ex.checkCtx(j.n); err != nil {
		j.err = err
		return
	}
	out, err := ex.runKernel(j.n, j.in, j.threads)
	if err != nil {
		j.err = err
		return
	}
	// Concurrent placement into disjoint wave-widened regions (see the
	// determinism argument above).
	for i, name := range j.n.Outputs {
		if name == "" || i >= len(out) {
			continue
		}
		placed, perr := ex.opts.Arena.place(name, out[i])
		if perr != nil {
			j.err = perr
			return
		}
		out[i] = placed
	}
	j.out = out
}

// runWaves executes order wave by wave on a persistent worker pool.
// Flattening opts.Waves must reproduce order exactly; the executor
// verifies this rather than trusting the caller, since a mismatched
// partition would silently break the memory plan's step indexing.
func (ex *executor) runWaves(order []*graph.Node) error {
	waves := ex.opts.Waves
	idx := 0
	for _, wave := range waves {
		for _, n := range wave {
			if idx >= len(order) || order[idx] != n {
				return fmt.Errorf("exec: wave partition does not flatten to the execution order at step %d", idx)
			}
			idx++
		}
	}
	if idx != len(order) {
		return fmt.Errorf("exec: wave partition covers %d of %d steps", idx, len(order))
	}

	workers := ex.opts.Workers
	jobs := make(chan *waveJob)
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for j := range jobs {
				j.run(ex)
				j.wg.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		pool.Wait()
	}()

	for _, wave := range waves {
		if err := ex.checkCtx(wave[0]); err != nil {
			return err
		}
		if len(wave) == 1 {
			// Solo wave (control flow, or clipped by the memory cap /
			// dependency structure): run inline with the whole worker
			// budget as intra-op threads.
			ex.soloThreads = workers
			err := ex.safeExec(wave[0])
			ex.soloThreads = 0
			if err != nil {
				return err
			}
			continue
		}
		if err := ex.runWave(wave, jobs, workers); err != nil {
			return err
		}
	}
	return nil
}

// runWave dispatches one multi-node wave and replays its bookkeeping
// sequentially in planned order after the barrier.
func (ex *executor) runWave(wave []*graph.Node, jobs chan<- *waveJob, workers int) error {
	threads := workers / len(wave)
	if threads < 1 {
		threads = 1
	}

	// Gather inputs sequentially before dispatch: reads of the values
	// map must not race with anything, and same-wave nodes never
	// consume same-wave outputs (antichain), so presence semantics are
	// identical to the sequential interpreter's.
	var wg sync.WaitGroup
	pending := make([]*waveJob, len(wave))
	for i, n := range wave {
		in, allPresent := ex.gatherInputs(n)
		if !allPresent {
			continue // dead path: bookkept as skipped at the barrier
		}
		pending[i] = &waveJob{n: n, in: in, threads: threads, wg: &wg}
	}
	wg.Add(len(wave)) // over-added for skipped slots; released below
	for _, j := range pending {
		if j == nil {
			wg.Done()
			continue
		}
		jobs <- j
	}
	wg.Wait() // barrier: the wave is always fully drained

	// Sequential bookkeeping in planned order — identical effects, in
	// identical order, to the sequential interpreter.
	for i, n := range wave {
		j := pending[i]
		if j == nil {
			ex.emit(n, nil, nil, true)
			ex.release(n)
			continue
		}
		if j.err != nil {
			return j.err // first failure in planned order
		}
		tainted := false
		for _, name := range n.Inputs {
			if name != "" && ex.invalid[name] {
				tainted = true
				break
			}
		}
		for oi, name := range n.Outputs {
			if name == "" || oi >= len(j.out) {
				continue
			}
			ex.values[name] = j.out[oi]
			if tainted {
				ex.invalid[name] = true
			}
		}
		ex.emit(n, j.in, j.out, false)
		if err := ex.account(n.Outputs, j.out); err != nil {
			return err
		}
		ex.release(n)
	}
	return nil
}
