package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/tensor"
)

// Tests for the guarded-execution hooks: panic containment, loop caps,
// per-inference contexts, allocation hooks, and arena budgets.

func reluChain(n int) *graph.Graph {
	g := graph.New("chain")
	g.AddInput("x", tensor.Float32, lattice.FromInts(4))
	prev := "x"
	for i := 0; i < n; i++ {
		out := "v" + string(rune('a'+i))
		g.Op("Relu", "r"+string(rune('a'+i)), []string{prev}, []string{out}, nil)
		prev = out
	}
	g.AddOutput(prev)
	return g
}

func TestPanicContainedAsOpError(t *testing.T) {
	// An empty int64 predicate makes Switch's predIndex index t.I[0]
	// out of range — a real panic that must surface as *guard.OpError.
	g := graph.New("panics")
	g.AddInput("p", tensor.Int64, lattice.FromInts(0))
	g.AddInput("x", tensor.Float32, lattice.FromInts(2))
	g.Op("Switch", "sw", []string{"p", "x"}, []string{"a", "b"}, nil)
	g.Op("Combine", "cb", []string{"a", "b"}, []string{"y"}, nil)
	g.AddOutput("y")
	_, err := Run(g, map[string]*tensor.Tensor{
		"p": tensor.New(tensor.Int64, 0),
		"x": tensor.New(tensor.Float32, 2),
	}, Options{})
	var oe *guard.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *guard.OpError, got %v", err)
	}
	if oe.Op != "Switch" || !errors.Is(err, guard.ErrPanic) {
		t.Errorf("contained panic = %+v", oe)
	}
}

func TestKernelErrorWrappedAsOpError(t *testing.T) {
	g := graph.New("bad")
	g.AddInput("x", tensor.Float32, lattice.FromInts(2, 3))
	g.AddInput("y", tensor.Float32, lattice.FromInts(4, 5))
	g.Op("MatMul", "mm", []string{"x", "y"}, []string{"z"}, nil)
	g.AddOutput("z")
	_, err := Run(g, map[string]*tensor.Tensor{
		"x": tensor.New(tensor.Float32, 2, 3),
		"y": tensor.New(tensor.Float32, 4, 5),
	}, Options{})
	var oe *guard.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *guard.OpError, got %v", err)
	}
	if oe.Node != "mm" || len(oe.InputShapes) != 2 || oe.InputShapes[1][0] != 4 {
		t.Errorf("structured fields = %+v", oe)
	}
}

func loopGraph(trip int64) *graph.Graph {
	body := graph.New("body")
	body.AddInput("i", tensor.Int64, lattice.FromInts())
	body.AddInput("c", tensor.Bool, lattice.FromInts())
	body.AddInput("acc", tensor.Float32, lattice.FromInts(1))
	body.AddInitializer("t", tensor.ScalarBool(true))
	body.Op("Relu", "r", []string{"acc"}, []string{"acc2"}, nil)
	body.AddOutput("t")
	body.AddOutput("acc2")

	g := graph.New("looper")
	g.AddInitializer("trip", tensor.ScalarInt(trip))
	g.AddInitializer("cond", tensor.ScalarBool(true))
	g.AddInput("x", tensor.Float32, lattice.FromInts(1))
	g.Op("Loop", "lp", []string{"trip", "cond", "x"}, []string{"y"},
		map[string]graph.AttrValue{"body": graph.GraphAttr(body)})
	g.AddOutput("y")
	return g
}

func TestLoopTripCapReturnsError(t *testing.T) {
	g := loopGraph(1 << 40) // corrupted/hostile trip count
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 1)},
		Options{MaxLoopIters: 10})
	if err == nil || !strings.Contains(err.Error(), "MaxLoopIters") {
		t.Fatalf("want loop-cap error, got %v", err)
	}
	// Under the cap the loop completes normally.
	if _, err := Run(loopGraph(5), map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 1)},
		Options{MaxLoopIters: 10}); err != nil {
		t.Fatalf("run under cap: %v", err)
	}
}

func TestContextCancelAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := reluChain(3)
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestContextCancelInsideLoopBody(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := loopGraph(1 << 30)
	iters := 0
	hooks := &Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
		iters++
		if iters == 5 {
			cancel() // cancel mid-loop: the Loop must notice
		}
		return nil
	}}
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 1)},
		Options{Ctx: ctx, Hooks: hooks})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from loop body, got %v", err)
	}
	if iters > 8 {
		t.Errorf("loop kept running after cancellation: %d body iterations", iters)
	}
}

func TestPreKernelHookInjectsStructuredError(t *testing.T) {
	g := reluChain(3)
	boom := errors.New("injected")
	count := 0
	hooks := &Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
		count++
		if count == 2 {
			return boom
		}
		return nil
	}}
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Hooks: hooks})
	var oe *guard.OpError
	if !errors.As(err, &oe) || !errors.Is(err, boom) {
		t.Fatalf("want wrapped injected error, got %v", err)
	}
	if oe.Node != "rb" {
		t.Errorf("fault at %s, want rb", oe.Node)
	}
}

func TestOnAllocHookOOM(t *testing.T) {
	g := reluChain(3)
	allocs := 0
	hooks := &Hooks{OnAlloc: func(name string, b int64) error {
		allocs++
		if allocs == 2 {
			return ErrArenaExhausted
		}
		return nil
	}}
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Hooks: hooks})
	if !errors.Is(err, ErrArenaExhausted) {
		t.Fatalf("want ErrArenaExhausted, got %v", err)
	}
}

func TestArenaBudgetEnforced(t *testing.T) {
	g := reluChain(1)
	arena := NewArena(map[string]int64{"va": 0}, 16)
	arena.Budget = 8 // 4 floats needed, budget of 2
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Arena: arena})
	if !errors.Is(err, ErrArenaExhausted) || !IsArenaFault(err) {
		t.Fatalf("want budget fault, got %v", err)
	}
	arena2 := NewArena(map[string]int64{"va": 0}, 16)
	arena2.Budget = 16
	if _, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Arena: arena2}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if arena2.HighWater != 16 {
		t.Errorf("high water = %d, want 16", arena2.HighWater)
	}
}

func TestArenaFaultClass(t *testing.T) {
	g := reluChain(1)
	over := NewArena(map[string]int64{"va": 0}, 4)
	_, err := Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Arena: over})
	if !errors.Is(err, ErrArenaOverflow) || !IsArenaFault(err) {
		t.Errorf("overflow fault: %v", err)
	}
	mis := NewArena(map[string]int64{"va": 2}, 64)
	_, err = Run(g, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 4)},
		Options{Arena: mis})
	if !errors.Is(err, ErrArenaMisaligned) || !IsArenaFault(err) {
		t.Errorf("misaligned fault: %v", err)
	}
}

func TestPostKernelHookMutatesOutputs(t *testing.T) {
	g := reluChain(1)
	hooks := &Hooks{PostKernel: func(n *graph.Node, out []*tensor.Tensor) error {
		for _, o := range out {
			if o != nil && o.DType == tensor.Float32 {
				o.Fill(7)
			}
		}
		return nil
	}}
	res, err := Run(g, map[string]*tensor.Tensor{
		"x": tensor.FromFloats([]int64{4}, []float32{-1, 2, -3, 4})}, Options{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["va"].F[0] != 7 {
		t.Errorf("post hook did not mutate: %v", res.Outputs["va"].F)
	}
}
