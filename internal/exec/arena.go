package exec

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Typed arena faults. All three mark plan-vs-runtime disagreements the
// guarded executor can recover from by falling back to the dynamic
// allocator (use errors.Is, or IsArenaFault for the whole class).
var (
	// ErrArenaExhausted reports a placement past the arena's optional
	// byte budget (also returned by the fault injector's OOM mode).
	ErrArenaExhausted = errors.New("arena budget exhausted")
	// ErrArenaOverflow reports a placement past the arena's backing store.
	ErrArenaOverflow = errors.New("exceeds arena")
	// ErrArenaMisaligned reports an unaligned planned offset.
	ErrArenaMisaligned = errors.New("misaligned arena offset")
)

// IsArenaFault reports whether err belongs to the arena fault class.
func IsArenaFault(err error) bool {
	return errors.Is(err, ErrArenaExhausted) ||
		errors.Is(err, ErrArenaOverflow) ||
		errors.Is(err, ErrArenaMisaligned)
}

// Arena is a runtime memory-allocation plan realized as one backing
// buffer: float32 intermediates whose offsets were planned are stored at
// their assigned positions instead of individually allocated. This is
// the execution-time half of SoD²'s dynamic memory planning (§4.4.1) —
// and running with it validates the plan end to end: if two
// concurrently-live tensors were assigned overlapping ranges, the model
// outputs would be corrupted.
type Arena struct {
	// Offsets maps value names to byte offsets in the arena.
	Offsets map[string]int64
	// Size is the arena's byte size.
	Size int64
	// Budget, when positive, caps the highest byte the arena may serve:
	// any placement ending past it fails with ErrArenaExhausted instead
	// of silently growing the footprint.
	Budget int64
	// HighWater is the highest byte actually touched by placements.
	HighWater int64

	buf []float32
}

// NewArena allocates the backing store for a plan.
func NewArena(offsets map[string]int64, size int64) *Arena {
	return &Arena{Offsets: offsets, Size: size, buf: make([]float32, (size+3)/4)}
}

// place copies a freshly produced tensor into its planned slot and
// returns the arena-backed view; tensors without a slot (dynamic
// fallback: ⊥-shaped values, non-float tensors) pass through unchanged.
func (a *Arena) place(name string, t *tensor.Tensor) (*tensor.Tensor, error) {
	if a == nil || t == nil || t.DType != tensor.Float32 {
		return t, nil
	}
	off, ok := a.Offsets[name]
	if !ok {
		return t, nil
	}
	n := t.Len()
	if off < 0 || off%4 != 0 {
		return nil, fmt.Errorf("exec: %s at offset %d: %w", name, off, ErrArenaMisaligned)
	}
	end := off + n*4
	if a.Budget > 0 && end > a.Budget {
		return nil, fmt.Errorf("exec: %s [%d,%d) over budget %d: %w", name, off, end, a.Budget, ErrArenaExhausted)
	}
	start := off / 4
	if start+n > int64(len(a.buf)) {
		return nil, fmt.Errorf("exec: %s [%d,%d) %w of %d floats", name, start, start+n, ErrArenaOverflow, int64(len(a.buf)))
	}
	if end > a.HighWater {
		a.HighWater = end
	}
	dst := a.buf[start : start+n]
	copy(dst, t.F)
	return &tensor.Tensor{DType: tensor.Float32, Shape: t.Shape, F: dst}, nil
}
