package exec

import (
	"fmt"

	"repro/internal/tensor"
)

// Arena is a runtime memory-allocation plan realized as one backing
// buffer: float32 intermediates whose offsets were planned are stored at
// their assigned positions instead of individually allocated. This is
// the execution-time half of SoD²'s dynamic memory planning (§4.4.1) —
// and running with it validates the plan end to end: if two
// concurrently-live tensors were assigned overlapping ranges, the model
// outputs would be corrupted.
type Arena struct {
	// Offsets maps value names to byte offsets in the arena.
	Offsets map[string]int64
	// Size is the arena's byte size.
	Size int64

	buf []float32
}

// NewArena allocates the backing store for a plan.
func NewArena(offsets map[string]int64, size int64) *Arena {
	return &Arena{Offsets: offsets, Size: size, buf: make([]float32, (size+3)/4)}
}

// place copies a freshly produced tensor into its planned slot and
// returns the arena-backed view; tensors without a slot (dynamic
// fallback: ⊥-shaped values, non-float tensors) pass through unchanged.
func (a *Arena) place(name string, t *tensor.Tensor) (*tensor.Tensor, error) {
	if a == nil || t == nil || t.DType != tensor.Float32 {
		return t, nil
	}
	off, ok := a.Offsets[name]
	if !ok {
		return t, nil
	}
	n := t.Len()
	if off%4 != 0 {
		return nil, fmt.Errorf("exec: arena offset %d for %s not aligned", off, name)
	}
	start := off / 4
	if start+n > int64(len(a.buf)) {
		return nil, fmt.Errorf("exec: %s [%d,%d) exceeds arena of %d floats", name, start, start+n, len(a.buf))
	}
	dst := a.buf[start : start+n]
	copy(dst, t.F)
	return &tensor.Tensor{DType: tensor.Float32, Shape: t.Shape, F: dst}, nil
}
