package exec

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"unsafe"

	"repro/internal/tensor"
)

// Typed arena faults. All three mark plan-vs-runtime disagreements the
// guarded executor can recover from by falling back to the dynamic
// allocator (use errors.Is, or IsArenaFault for the whole class).
var (
	// ErrArenaExhausted reports a placement past the arena's optional
	// byte budget (also returned by the fault injector's OOM mode).
	ErrArenaExhausted = errors.New("arena budget exhausted")
	// ErrArenaOverflow reports a placement past the arena's backing store.
	ErrArenaOverflow = errors.New("exceeds arena")
	// ErrArenaMisaligned reports an unaligned planned offset.
	ErrArenaMisaligned = errors.New("misaligned arena offset")
)

// IsArenaFault reports whether err belongs to the arena fault class.
func IsArenaFault(err error) bool {
	return errors.Is(err, ErrArenaExhausted) ||
		errors.Is(err, ErrArenaOverflow) ||
		errors.Is(err, ErrArenaMisaligned)
}

// Arena is a runtime memory-allocation plan realized as one backing
// buffer: float32 intermediates whose offsets were planned are stored at
// their assigned positions instead of individually allocated. This is
// the execution-time half of SoD²'s dynamic memory planning (§4.4.1) —
// and running with it validates the plan end to end: if two
// concurrently-live tensors were assigned overlapping ranges, the model
// outputs would be corrupted.
type Arena struct {
	// Offsets maps value names to byte offsets in the arena.
	Offsets map[string]int64
	// Size is the arena's byte size.
	Size int64
	// Budget, when positive, caps the highest byte the arena may serve:
	// any placement ending past it fails with ErrArenaExhausted instead
	// of silently growing the footprint.
	Budget int64
	// HighWater is the highest byte actually touched by placements.
	// Guarded by hwMu: the wavefront executor places same-wave outputs
	// concurrently (into disjoint planned regions — the copies need no
	// lock, but this max does).
	HighWater int64

	hwMu sync.Mutex
	buf  []float32
	// pooled marks arenas whose buf came from the size-class pool and
	// must be returned via Release; cls is its pool class.
	pooled bool
	cls    int
}

// NewArena allocates the backing store for a plan.
func NewArena(offsets map[string]int64, size int64) *Arena {
	return &Arena{Offsets: offsets, Size: size, buf: make([]float32, (size+3)/4)}
}

// arenaPools recycles arena backing buffers by power-of-two size class
// (indexed by bits.Len64 of the float count), so concurrent inferences
// reuse a small set of buffers instead of each allocating a fresh arena.
var arenaPools [48]sync.Pool

func classOf(floats int64) int { return bits.Len64(uint64(floats)) }

// NewPooledArena is NewArena with the backing store drawn from the
// size-classed pool. The caller must Release() the arena when the
// inference is done — after Detach()ing any tensors that must outlive it.
func NewPooledArena(offsets map[string]int64, size int64) *Arena {
	floats := (size + 3) / 4
	cls := classOf(floats)
	var buf []float32
	if v := arenaPools[cls].Get(); v != nil {
		if b := v.([]float32); int64(cap(b)) >= floats {
			buf = b[:floats]
		}
	}
	if buf == nil {
		// Round up to the class ceiling so every buffer in a class can
		// serve every request of that class.
		buf = make([]float32, floats, int64(1)<<cls)
	}
	return &Arena{Offsets: offsets, Size: size, buf: buf, pooled: true, cls: cls}
}

// Release returns a pooled arena's backing buffer to its size-class
// pool. The arena must not be used afterwards; tensors still aliasing
// the buffer (see Detach) would be silently corrupted by the next user.
// Release on a nil or non-pooled arena is a no-op.
func (a *Arena) Release() {
	if a == nil || !a.pooled || a.buf == nil {
		return
	}
	buf := a.buf
	a.buf = nil
	arenaPools[a.cls].Put(buf) //nolint:staticcheck // slice header allocation is amortized
}

// DrainArenaPools discards every idle pooled arena backing buffer and
// returns how many were dropped. The pools are process-global (shared
// by every Compiled and Session), so draining releases the retained
// float32 buffers to the garbage collector at the cost of re-allocation
// by whoever runs next — the graceful-shutdown path. Buffers checked
// out by in-flight runs are untouched (their Release simply repopulates
// the pool). Safe for concurrent use: the pools are never reassigned,
// only emptied one Get at a time.
func DrainArenaPools() (buffers int) {
	for i := range arenaPools {
		for arenaPools[i].Get() != nil {
			buffers++
		}
	}
	return buffers
}

// Detach replaces every tensor in outputs whose storage aliases the
// arena's backing buffer with an independent clone, so the arena can be
// Release()d while the outputs live on. Aliases are detected by storage
// address, which also catches view-producing kernels (Reshape) that
// forward an arena-placed buffer under a different name.
func (a *Arena) Detach(outputs map[string]*tensor.Tensor) {
	if a == nil || len(a.buf) == 0 {
		return
	}
	lo := uintptr(unsafe.Pointer(unsafe.SliceData(a.buf)))
	hi := lo + uintptr(len(a.buf))*unsafe.Sizeof(float32(0))
	for name, t := range outputs {
		if t == nil || t.DType != tensor.Float32 || len(t.F) == 0 {
			continue
		}
		p := uintptr(unsafe.Pointer(unsafe.SliceData(t.F)))
		if p >= lo && p < hi {
			outputs[name] = t.Clone()
		}
	}
}

// place copies a freshly produced tensor into its planned slot and
// returns the arena-backed view; tensors without a slot (dynamic
// fallback: ⊥-shaped values, non-float tensors) pass through unchanged.
func (a *Arena) place(name string, t *tensor.Tensor) (*tensor.Tensor, error) {
	if a == nil || t == nil || t.DType != tensor.Float32 {
		return t, nil
	}
	off, ok := a.Offsets[name]
	if !ok {
		return t, nil
	}
	n := t.Len()
	if off < 0 || off%4 != 0 {
		return nil, fmt.Errorf("exec: %s at offset %d: %w", name, off, ErrArenaMisaligned)
	}
	end := off + n*4
	if a.Budget > 0 && end > a.Budget {
		return nil, fmt.Errorf("exec: %s [%d,%d) over budget %d: %w", name, off, end, a.Budget, ErrArenaExhausted)
	}
	start := off / 4
	if start+n > int64(len(a.buf)) {
		return nil, fmt.Errorf("exec: %s [%d,%d) %w of %d floats", name, start, start+n, ErrArenaOverflow, int64(len(a.buf)))
	}
	a.hwMu.Lock()
	if end > a.HighWater {
		a.HighWater = end
	}
	a.hwMu.Unlock()
	dst := a.buf[start : start+n]
	copy(dst, t.F)
	return &tensor.Tensor{DType: tensor.Float32, Shape: t.Shape, F: dst}, nil
}
