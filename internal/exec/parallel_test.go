package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/tensor"
)

// fanGraph: one input, k independent unary branches, folded back
// together with a chain of Adds — the smallest graph with a wide wave.
func fanGraph(k int) *graph.Graph {
	g := graph.New("fan")
	g.AddInput("x", tensor.Float32, lattice.FromInts(256))
	ops := []string{"Relu", "Sigmoid", "Neg", "Abs", "Exp", "Tanh"}
	for i := 0; i < k; i++ {
		g.Op(ops[i%len(ops)], fmt.Sprintf("b%d", i), []string{"x"}, []string{fmt.Sprintf("y%d", i)}, nil)
	}
	prev := "y0"
	for i := 1; i < k; i++ {
		out := fmt.Sprintf("s%d", i)
		g.Op("Add", fmt.Sprintf("j%d", i), []string{prev, fmt.Sprintf("y%d", i)}, []string{out}, nil)
		prev = out
	}
	g.AddOutput(prev)
	return g
}

func isControlFlow(n *graph.Node) bool {
	switch n.OpType {
	case "If", "Loop", "Switch", "Combine":
		return true
	}
	return false
}

// partitionWaves levelizes a topological order into contiguous
// antichain waves — the same greedy rule plan.BuildWavefronts applies,
// minus the memory cap (exec tests exercise the executor, not the
// planner).
func partitionWaves(order []*graph.Node) [][]*graph.Node {
	var waves [][]*graph.Node
	var cur []*graph.Node
	produced := map[string]bool{}
	flush := func() {
		if len(cur) > 0 {
			waves = append(waves, cur)
			cur = nil
			produced = map[string]bool{}
		}
	}
	for _, n := range order {
		joins := len(cur) > 0
		if joins && (isControlFlow(n) || isControlFlow(cur[0])) {
			joins = false
		}
		if joins {
			for _, in := range n.Inputs {
				if in != "" && produced[in] {
					joins = false
					break
				}
			}
		}
		if !joins {
			flush()
		}
		cur = append(cur, n)
		for _, o := range n.Outputs {
			if o != "" {
				produced[o] = true
			}
		}
	}
	flush()
	return waves
}

func fanInputs() map[string]*tensor.Tensor {
	x := tensor.New(tensor.Float32, 256)
	rng := tensor.NewRNG(7)
	for i := range x.F {
		x.F[i] = rng.NormFloat32()
	}
	return map[string]*tensor.Tensor{"x": x}
}

// assertIdentical compares two results bit for bit: same outputs, same
// trace event sequence, same skip flags.
func assertIdentical(t *testing.T, seq, par *Result) {
	t.Helper()
	if len(par.Outputs) != len(seq.Outputs) {
		t.Fatalf("outputs: %d parallel vs %d sequential", len(par.Outputs), len(seq.Outputs))
	}
	for name, want := range seq.Outputs {
		got := par.Outputs[name]
		if got == nil {
			t.Fatalf("output %q missing from parallel run", name)
		}
		if len(got.F) != len(want.F) {
			t.Fatalf("output %q length %d vs %d", name, len(got.F), len(want.F))
		}
		for i := range want.F {
			if got.F[i] != want.F[i] {
				t.Fatalf("output %q diverges at %d: %v != %v", name, i, got.F[i], want.F[i])
			}
		}
	}
	if len(par.Trace.Events) != len(seq.Trace.Events) {
		t.Fatalf("trace: %d parallel events vs %d sequential", len(par.Trace.Events), len(seq.Trace.Events))
	}
	for i := range seq.Trace.Events {
		se, pe := seq.Trace.Events[i], par.Trace.Events[i]
		if se.Node != pe.Node || se.Skipped != pe.Skipped {
			t.Fatalf("trace event %d: %s/%v parallel vs %s/%v sequential",
				i, pe.Node.Name, pe.Skipped, se.Node.Name, se.Skipped)
		}
	}
}

func TestWavesBitIdenticalToSequential(t *testing.T) {
	g := fanGraph(6)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	waves := partitionWaves(order)
	wide := 0
	for _, w := range waves {
		if len(w) > wide {
			wide = len(w)
		}
	}
	if wide < 2 {
		t.Fatalf("test graph produced no wide wave (max %d)", wide)
	}
	in := fanInputs()
	seq, err := Run(g, in, Options{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := Run(g, in, Options{Order: order, Waves: waves, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertIdentical(t, seq, par)
	}
}

func TestWavesWithArenaMatchesSequential(t *testing.T) {
	g := fanGraph(4)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	waves := partitionWaves(order)
	// Disjoint offsets for every intermediate: trivially wave-widened.
	offsets := map[string]int64{}
	var off int64
	for _, n := range order {
		for _, o := range n.Outputs {
			offsets[o] = off
			off += 256 * 4
		}
	}
	in := fanInputs()
	seq, err := Run(g, in, Options{Order: order})
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena(offsets, off)
	par, err := Run(g, in, Options{Order: order, Waves: waves, Workers: 4, Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, seq, par)
	if arena.HighWater <= 0 || arena.HighWater > off {
		t.Fatalf("arena high water %d outside (0,%d]", arena.HighWater, off)
	}
}

func TestWavesControlFlowAndSkips(t *testing.T) {
	g := gatedGraph()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	waves := partitionWaves(order)
	for _, gate := range []float32{0, 1} {
		in := map[string]*tensor.Tensor{
			"x":    tensor.FromFloats([]int64{1, 4}, []float32{-2, -1, 1, 2}),
			"gate": tensor.FromFloats(nil, []float32{gate}),
		}
		seq, err := Run(g, in, Options{Order: order})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(g, in, Options{Order: order, Waves: waves, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seq, par)
	}
}

func TestWavesPanicContainedAndPoolDrains(t *testing.T) {
	g := fanGraph(6)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	waves := partitionWaves(order)
	hooks := &Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
		if n.Name == "b3" {
			panic("injected wave-worker fault")
		}
		return nil
	}}
	before := runtime.NumGoroutine()
	_, err = Run(g, fanInputs(), Options{Order: order, Waves: waves, Workers: 4, Hooks: hooks})
	var oe *guard.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *guard.OpError, got %T: %v", err, err)
	}
	if oe.Node != "b3" || !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("panic not attributed to b3: %v", err)
	}
	// The pool must fully drain: no leaked worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestWavesCtxCancel(t *testing.T) {
	g := fanGraph(4)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(g, fanInputs(), Options{Order: order, Waves: partitionWaves(order), Workers: 4, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestWavesRejectMismatchedPartition(t *testing.T) {
	g := fanGraph(4)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	waves := partitionWaves(order)
	// Drop the last wave: the partition no longer covers the order.
	short := waves[:len(waves)-1]
	if _, err := Run(g, fanInputs(), Options{Order: order, Waves: short, Workers: 4}); err == nil {
		t.Fatal("truncated wave partition accepted")
	}
}
