package kernels

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestCumSum(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	axis := tensor.ScalarInt(1)
	out := run1(t, "CumSum", nil, x, axis)
	want := []float32{1, 3, 6, 4, 9, 15}
	for i, v := range want {
		if out.F[i] != v {
			t.Fatalf("cumsum = %v", out.F)
		}
	}
	ex := run1(t, "CumSum", map[string]graph.AttrValue{"exclusive": graph.IntAttr(1)}, x, axis)
	if ex.F[0] != 0 || ex.F[1] != 1 || ex.F[2] != 3 {
		t.Errorf("exclusive = %v", ex.F)
	}
	rv := run1(t, "CumSum", map[string]graph.AttrValue{"reverse": graph.IntAttr(1)}, x, axis)
	if rv.F[0] != 6 || rv.F[2] != 3 {
		t.Errorf("reverse = %v", rv.F)
	}
}

func TestTrilu(t *testing.T) {
	x := tensor.FromFloats([]int64{3, 3}, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	up := run1(t, "Trilu", nil, x)
	wantUp := []float32{1, 2, 3, 0, 5, 6, 0, 0, 9}
	for i, v := range wantUp {
		if up.F[i] != v {
			t.Fatalf("upper = %v", up.F)
		}
	}
	lo := run1(t, "Trilu", map[string]graph.AttrValue{"upper": graph.IntAttr(0)}, x)
	wantLo := []float32{1, 0, 0, 4, 5, 0, 7, 8, 9}
	for i, v := range wantLo {
		if lo.F[i] != v {
			t.Fatalf("lower = %v", lo.F)
		}
	}
	// Diagonal shift k=1 on upper keeps strictly-above-diagonal.
	k1 := run1(t, "Trilu", nil, x, tensor.ScalarInt(1))
	if k1.F[0] != 0 || k1.F[1] != 2 {
		t.Errorf("k=1 = %v", k1.F)
	}
}

func TestScatterElements(t *testing.T) {
	data := tensor.FromFloats([]int64{1, 5}, []float32{0, 0, 0, 0, 0})
	idx := tensor.FromInts([]int64{1, 2}, []int64{1, 3})
	upd := tensor.FromFloats([]int64{1, 2}, []float32{7, 9})
	out := run1(t, "ScatterElements", map[string]graph.AttrValue{"axis": graph.IntAttr(1)}, data, idx, upd)
	want := []float32{0, 7, 0, 9, 0}
	for i, v := range want {
		if out.F[i] != v {
			t.Fatalf("scatter = %v", out.F)
		}
	}
	// Out-of-range index errors.
	bad := tensor.FromInts([]int64{1, 1}, []int64{9})
	badU := tensor.FromFloats([]int64{1, 1}, []float32{1})
	if _, err := Run(mkNode("ScatterElements", map[string]graph.AttrValue{"axis": graph.IntAttr(1)}, 1),
		[]*tensor.Tensor{data, bad, badU}); err == nil {
		t.Error("expected range error")
	}
}

func TestExtraUnaries(t *testing.T) {
	x := tensor.FromFloats([]int64{3}, []float32{-2, 0, 2})
	ss := run1(t, "Softsign", nil, x)
	if math.Abs(float64(ss.F[0])+2.0/3) > 1e-6 || ss.F[1] != 0 {
		t.Errorf("softsign = %v", ss.F)
	}
	tr := run1(t, "ThresholdedRelu", map[string]graph.AttrValue{"alpha": graph.FloatAttr(1)}, x)
	if tr.F[0] != 0 || tr.F[2] != 2 {
		t.Errorf("thresholded = %v", tr.F)
	}
	sin := run1(t, "Sin", nil, tensor.FromFloats([]int64{1}, []float32{0}))
	cos := run1(t, "Cos", nil, tensor.FromFloats([]int64{1}, []float32{0}))
	if sin.F[0] != 0 || cos.F[0] != 1 {
		t.Errorf("sin/cos = %v %v", sin.F, cos.F)
	}
}
