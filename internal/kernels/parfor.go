package kernels

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// parGrain is the minimum number of scalar elements a stripe must own
// before ParallelFor spawns a goroutine for it. Below this, goroutine
// launch + WaitGroup overhead dominates the arithmetic.
const parGrain = int64(1) << 13

// ParallelFor splits [0,n) into at most `threads` contiguous stripes of
// at least parGrain elements each and runs f on every stripe, clamping
// the stripe count to the work size (n=3, threads=8 yields 3 stripes,
// never a silent single-threaded collapse). Stripes are disjoint, so a
// kernel writing out[lo:hi] per stripe is bit-identical to its
// sequential loop.
func ParallelFor(threads int, n int64, f func(lo, hi int64)) {
	ParallelForGrain(threads, n, parGrain, f)
}

// ParallelForGrain is ParallelFor with an explicit per-stripe floor.
func ParallelForGrain(threads int, n, grain int64, f func(lo, hi int64)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	stripes := int64(threads)
	if stripes > n {
		stripes = n
	}
	if maxStripes := (n + grain - 1) / grain; stripes > maxStripes {
		stripes = maxStripes
	}
	if stripes <= 1 {
		f(0, n)
		return
	}
	chunk := (n + stripes - 1) / stripes
	var wg sync.WaitGroup
	for lo := int64(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BudgetedKernel executes one operator with an intra-op thread budget.
// Implementations must produce bit-identical outputs for every budget
// (stripes are disjoint and per-element arithmetic order is unchanged).
type BudgetedKernel func(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error)

var budgeted = map[string]BudgetedKernel{}

// registerBudgeted installs a thread-budget-aware kernel variant next to
// the plain one; duplicates panic at init time.
func registerBudgeted(op string, k BudgetedKernel) {
	if _, dup := budgeted[op]; dup {
		panic("kernels: duplicate budgeted " + op)
	}
	budgeted[op] = k
}

// HasBudgeted reports whether op has a thread-budget-aware variant.
func HasBudgeted(op string) bool {
	_, ok := budgeted[op]
	return ok
}

// RunWithBudget executes the node's kernel with an intra-op thread
// budget. Ops without a budgeted variant (or budget <= 1) fall back to
// the plain sequential kernel; results are bit-identical either way.
func RunWithBudget(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if threads > 1 {
		if bk, ok := budgeted[n.OpType]; ok {
			out, err := bk(n, in, threads)
			if err != nil {
				return nil, fmt.Errorf("kernels: %s(%s): %w", n.OpType, n.Name, err)
			}
			return out, nil
		}
	}
	return Run(n, in)
}
