package kernels

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func copyElem(dst *tensor.Tensor, di int64, src *tensor.Tensor, si int64) {
	switch src.DType {
	case tensor.Float32:
		dst.F[di] = src.F[si]
	case tensor.Int64:
		dst.I[di] = src.I[si]
	case tensor.Bool:
		dst.B[di] = src.B[si]
	}
}

func shapeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Shape"); err != nil {
		return nil, err
	}
	return []*tensor.Tensor{tensor.FromInts([]int64{int64(in[0].Rank())}, append([]int64{}, in[0].Shape...))}, nil
}

func sizeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Size"); err != nil {
		return nil, err
	}
	return []*tensor.Tensor{tensor.ScalarInt(in[0].Len())}, nil
}

func reshapeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Reshape"); err != nil {
		return nil, err
	}
	x, target := in[0], in[1]
	shape := append([]int64{}, target.I...)
	total := x.Len()
	inferIdx := -1
	prod := int64(1)
	for i, d := range shape {
		switch {
		case d == -1:
			if inferIdx >= 0 {
				return nil, fmt.Errorf("Reshape: multiple -1")
			}
			inferIdx = i
		case d == 0:
			if i >= x.Rank() {
				return nil, fmt.Errorf("Reshape: 0-dim beyond input rank")
			}
			shape[i] = x.Shape[i]
			prod *= shape[i]
		default:
			prod *= d
		}
	}
	if inferIdx >= 0 {
		if prod == 0 || total%prod != 0 {
			return nil, fmt.Errorf("Reshape: cannot infer dim (%d / %d)", total, prod)
		}
		shape[inferIdx] = total / prod
	}
	return []*tensor.Tensor{in[0].Clone().Reshaped(shape)}, nil
}

func flattenKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Flatten"); err != nil {
		return nil, err
	}
	x := in[0]
	axis := n.AttrInt("axis", 1)
	if axis < 0 {
		axis += int64(x.Rank())
	}
	a := tensor.NumElems(x.Shape[:axis])
	b := tensor.NumElems(x.Shape[axis:])
	return []*tensor.Tensor{x.Clone().Reshaped([]int64{a, b})}, nil
}

func squeezeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Squeeze"); err != nil {
		return nil, err
	}
	x := in[0]
	axes := n.AttrInts("axes", nil)
	if len(in) > 1 && in[1] != nil {
		axes = in[1].I
	}
	drop := map[int64]bool{}
	if len(axes) == 0 {
		for i, d := range x.Shape {
			if d == 1 {
				drop[int64(i)] = true
			}
		}
	}
	for _, a := range axes {
		if a < 0 {
			a += int64(x.Rank())
		}
		drop[a] = true
	}
	var shape []int64
	for i, d := range x.Shape {
		if !drop[int64(i)] {
			shape = append(shape, d)
		}
	}
	return []*tensor.Tensor{x.Clone().Reshaped(shape)}, nil
}

func unsqueezeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Unsqueeze"); err != nil {
		return nil, err
	}
	x := in[0]
	axes := n.AttrInts("axes", nil)
	if len(in) > 1 && in[1] != nil {
		axes = in[1].I
	}
	newRank := x.Rank() + len(axes)
	ins := map[int64]bool{}
	for _, a := range axes {
		if a < 0 {
			a += int64(newRank)
		}
		ins[a] = true
	}
	shape := make([]int64, 0, newRank)
	j := 0
	for i := 0; i < newRank; i++ {
		if ins[int64(i)] {
			shape = append(shape, 1)
		} else {
			shape = append(shape, x.Shape[j])
			j++
		}
	}
	return []*tensor.Tensor{x.Clone().Reshaped(shape)}, nil
}

func transposeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Transpose"); err != nil {
		return nil, err
	}
	x := in[0]
	perm := n.AttrInts("perm", nil)
	if perm == nil {
		perm = make([]int64, x.Rank())
		for i := range perm {
			perm[i] = int64(x.Rank() - 1 - i)
		}
	}
	outShape := make([]int64, x.Rank())
	for i, p := range perm {
		outShape[i] = x.Shape[p]
	}
	out := tensor.New(x.DType, outShape...)
	inStrides := tensor.Strides(x.Shape)
	outStrides := tensor.Strides(outShape)
	n64 := x.Len()
	idx := make([]int64, x.Rank())
	for flat := int64(0); flat < n64; flat++ {
		rem := flat
		for i := range idx {
			idx[i] = rem / outStrides[i]
			rem %= outStrides[i]
		}
		var src int64
		for i, p := range perm {
			src += idx[i] * inStrides[p]
		}
		copyElem(out, flat, x, src)
	}
	return []*tensor.Tensor{out}, nil
}

func concatKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Concat"); err != nil {
		return nil, err
	}
	axis := n.AttrInt("axis", 0)
	if axis < 0 {
		axis += int64(in[0].Rank())
	}
	outShape := append([]int64{}, in[0].Shape...)
	var axisTotal int64
	for _, t := range in {
		axisTotal += t.Shape[axis]
	}
	outShape[axis] = axisTotal
	out := tensor.New(in[0].DType, outShape...)
	outer := tensor.NumElems(outShape[:axis])
	innerOut := tensor.NumElems(outShape[axis:])
	copied := int64(0)
	for _, t := range in {
		innerT := tensor.NumElems(t.Shape[axis:])
		for o := int64(0); o < outer; o++ {
			dstBase := o*innerOut + copied
			srcBase := o * innerT
			for i := int64(0); i < innerT; i++ {
				copyElem(out, dstBase+i, t, srcBase+i)
			}
		}
		copied += innerT
	}
	return []*tensor.Tensor{out}, nil
}

func splitKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Split"); err != nil {
		return nil, err
	}
	x := in[0]
	axis := n.AttrInt("axis", 0)
	if axis < 0 {
		axis += int64(x.Rank())
	}
	splits := n.AttrInts("split", nil)
	if len(in) > 1 && in[1] != nil {
		splits = in[1].I
	}
	nOut := len(n.Outputs)
	if splits == nil {
		if x.Shape[axis]%int64(nOut) != 0 {
			return nil, fmt.Errorf("Split: %d not divisible by %d", x.Shape[axis], nOut)
		}
		each := x.Shape[axis] / int64(nOut)
		splits = make([]int64, nOut)
		for i := range splits {
			splits[i] = each
		}
	}
	outer := tensor.NumElems(x.Shape[:axis])
	inner := tensor.NumElems(x.Shape[axis+1:])
	outs := make([]*tensor.Tensor, len(splits))
	offset := int64(0)
	for s, sz := range splits {
		shape := append([]int64{}, x.Shape...)
		shape[axis] = sz
		out := tensor.New(x.DType, shape...)
		for o := int64(0); o < outer; o++ {
			for a := int64(0); a < sz; a++ {
				srcBase := (o*x.Shape[axis] + offset + a) * inner
				dstBase := (o*sz + a) * inner
				for i := int64(0); i < inner; i++ {
					copyElem(out, dstBase+i, x, srcBase+i)
				}
			}
		}
		outs[s] = out
		offset += sz
	}
	return outs, nil
}

func gatherKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Gather"); err != nil {
		return nil, err
	}
	data, indices := in[0], in[1]
	axis := n.AttrInt("axis", 0)
	if axis < 0 {
		axis += int64(data.Rank())
	}
	outShape := append([]int64{}, data.Shape[:axis]...)
	outShape = append(outShape, indices.Shape...)
	outShape = append(outShape, data.Shape[axis+1:]...)
	outer := tensor.NumElems(data.Shape[:axis])
	axisLen := data.Shape[axis]
	inner := tensor.NumElems(data.Shape[axis+1:])
	if data.Q != nil {
		// Embedding-table path: the table is quantized one storage row
		// per axis-0 entry, so each lookup dequantizes its row straight
		// into the float32 output — the table is never unpacked whole.
		if axis == 0 && data.Q.Rows == axisLen && data.Q.Cols == inner {
			out := tensor.New(tensor.Float32, outShape...)
			for ii := int64(0); ii < indices.Len(); ii++ {
				idx := indices.I[ii]
				if idx < 0 {
					idx += axisLen
				}
				if idx < 0 || idx >= axisLen {
					return nil, fmt.Errorf("Gather: index %d out of range [0,%d)", idx, axisLen)
				}
				data.Q.DequantRow(idx, out.F[ii*inner:(ii+1)*inner])
			}
			return []*tensor.Tensor{out}, nil
		}
		data = data.Dequantize()
	}
	out := tensor.New(data.DType, outShape...)
	nIdx := indices.Len()
	for o := int64(0); o < outer; o++ {
		for ii := int64(0); ii < nIdx; ii++ {
			idx := indices.I[ii]
			if idx < 0 {
				idx += axisLen
			}
			if idx < 0 || idx >= axisLen {
				return nil, fmt.Errorf("Gather: index %d out of range [0,%d)", idx, axisLen)
			}
			srcBase := (o*axisLen + idx) * inner
			dstBase := (o*nIdx + ii) * inner
			for i := int64(0); i < inner; i++ {
				copyElem(out, dstBase+i, data, srcBase+i)
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

func sliceKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 3, "Slice"); err != nil {
		return nil, err
	}
	x := in[0]
	starts, ends := in[1].I, in[2].I
	var axes, steps []int64
	if len(in) > 3 && in[3] != nil {
		axes = in[3].I
	}
	if len(in) > 4 && in[4] != nil {
		steps = in[4].I
	}
	if axes == nil {
		axes = make([]int64, len(starts))
		for i := range axes {
			axes[i] = int64(i)
		}
	}
	start := make([]int64, x.Rank())
	step := make([]int64, x.Rank())
	count := append([]int64{}, x.Shape...)
	for i := range step {
		step[i] = 1
	}
	for i, aRaw := range axes {
		a := aRaw
		if a < 0 {
			a += int64(x.Rank())
		}
		st, en := starts[i], ends[i]
		dim := x.Shape[a]
		sp := int64(1)
		if steps != nil {
			sp = steps[i]
		}
		if sp <= 0 {
			return nil, fmt.Errorf("Slice: non-positive step %d", sp)
		}
		if st < 0 {
			st += dim
		}
		if en < 0 {
			en += dim
		}
		if st < 0 {
			st = 0
		}
		if st > dim {
			st = dim
		}
		if en > dim {
			en = dim
		}
		if en < st {
			en = st
		}
		start[a] = st
		step[a] = sp
		count[a] = (en - st + sp - 1) / sp
	}
	out := tensor.New(x.DType, count...)
	inStrides := tensor.Strides(x.Shape)
	outStrides := tensor.Strides(count)
	idx := make([]int64, x.Rank())
	for flat := int64(0); flat < out.Len(); flat++ {
		rem := flat
		var src int64
		for i := range idx {
			idx[i] = rem / outStrides[i]
			rem %= outStrides[i]
			src += (start[i] + idx[i]*step[i]) * inStrides[i]
		}
		copyElem(out, flat, x, src)
	}
	return []*tensor.Tensor{out}, nil
}

func expandKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Expand"); err != nil {
		return nil, err
	}
	x := in[0]
	shape, err := tensor.BroadcastShapes(x.Shape, in[1].I)
	if err != nil {
		return nil, err
	}
	out := tensor.New(x.DType, shape...)
	for i := int64(0); i < out.Len(); i++ {
		copyElem(out, i, x, tensor.BroadcastIndex(x.Shape, shape, i))
	}
	return []*tensor.Tensor{out}, nil
}

func rangeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 3, "Range"); err != nil {
		return nil, err
	}
	if in[0].DType == tensor.Int64 {
		start, limit, delta := in[0].I[0], in[1].I[0], in[2].I[0]
		if delta == 0 {
			return nil, fmt.Errorf("Range: zero delta")
		}
		cnt := (limit - start + delta - 1) / delta
		if cnt < 0 {
			cnt = 0
		}
		out := tensor.New(tensor.Int64, cnt)
		v := start
		for i := int64(0); i < cnt; i++ {
			out.I[i] = v
			v += delta
		}
		return []*tensor.Tensor{out}, nil
	}
	start, limit, delta := in[0].F[0], in[1].F[0], in[2].F[0]
	cnt := int64(math.Ceil(float64((limit - start) / delta)))
	if cnt < 0 {
		cnt = 0
	}
	out := tensor.New(tensor.Float32, cnt)
	for i := int64(0); i < cnt; i++ {
		out.F[i] = start + float32(i)*delta
	}
	return []*tensor.Tensor{out}, nil
}

func constantOfShapeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "ConstantOfShape"); err != nil {
		return nil, err
	}
	val := float32(n.AttrFloat("value", 0))
	out := tensor.New(tensor.Float32, in[0].I...)
	for i := range out.F {
		out.F[i] = val
	}
	return []*tensor.Tensor{out}, nil
}

func eyeLikeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "EyeLike"); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 2 {
		return nil, fmt.Errorf("EyeLike: rank %d", x.Rank())
	}
	out := tensor.New(tensor.Float32, x.Shape...)
	k := n.AttrInt("k", 0)
	for i := int64(0); i < x.Shape[0]; i++ {
		j := i + k
		if j >= 0 && j < x.Shape[1] {
			out.F[i*x.Shape[1]+j] = 1
		}
	}
	return []*tensor.Tensor{out}, nil
}

func padKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Pad"); err != nil {
		return nil, err
	}
	x := in[0]
	pads := n.AttrInts("pads", nil)
	if len(in) > 1 && in[1] != nil {
		pads = in[1].I
	}
	if len(pads) != 2*x.Rank() {
		return nil, fmt.Errorf("Pad: %d pads for rank %d", len(pads), x.Rank())
	}
	var cval float32
	if len(in) > 2 && in[2] != nil && len(in[2].F) > 0 {
		cval = in[2].F[0]
	}
	outShape := make([]int64, x.Rank())
	for i := range outShape {
		outShape[i] = x.Shape[i] + pads[i] + pads[x.Rank()+i]
	}
	out := tensor.New(x.DType, outShape...)
	for i := range out.F {
		out.F[i] = cval
	}
	inStrides := tensor.Strides(x.Shape)
	outStrides := tensor.Strides(outShape)
	idx := make([]int64, x.Rank())
	for flat := int64(0); flat < x.Len(); flat++ {
		rem := flat
		var dst int64
		for i := range idx {
			idx[i] = rem / inStrides[i]
			rem %= inStrides[i]
			dst += (idx[i] + pads[i]) * outStrides[i]
		}
		copyElem(out, dst, x, flat)
	}
	return []*tensor.Tensor{out}, nil
}

func tileKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Tile"); err != nil {
		return nil, err
	}
	x := in[0]
	reps := in[1].I
	outShape := make([]int64, x.Rank())
	for i := range outShape {
		outShape[i] = x.Shape[i] * reps[i]
	}
	out := tensor.New(x.DType, outShape...)
	inStrides := tensor.Strides(x.Shape)
	outStrides := tensor.Strides(outShape)
	idx := make([]int64, x.Rank())
	for flat := int64(0); flat < out.Len(); flat++ {
		rem := flat
		var src int64
		for i := range idx {
			idx[i] = rem / outStrides[i]
			rem %= outStrides[i]
			src += (idx[i] % x.Shape[i]) * inStrides[i]
		}
		copyElem(out, flat, x, src)
	}
	return []*tensor.Tensor{out}, nil
}

// resizeKernel: nearest-neighbour resize driven by scales (input 2) or
// sizes (input 3); NCHW only.
func resizeKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Resize"); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 4 {
		return nil, fmt.Errorf("Resize: rank %d", x.Rank())
	}
	outShape := append([]int64{}, x.Shape...)
	switch {
	case len(in) > 3 && in[3] != nil && in[3].Len() > 0:
		copy(outShape, in[3].I)
	case len(in) > 2 && in[2] != nil && in[2].Len() > 0:
		for i := range outShape {
			outShape[i] = int64(float64(x.Shape[i]) * float64(in[2].F[i]))
		}
	default:
		return nil, fmt.Errorf("Resize: neither scales nor sizes provided")
	}
	out := tensor.New(tensor.Float32, outShape...)
	N, C := outShape[0], outShape[1]
	oh, ow := outShape[2], outShape[3]
	ih, iw := x.Shape[2], x.Shape[3]
	for b := int64(0); b < N; b++ {
		for c := int64(0); c < C; c++ {
			srcBase := (b*x.Shape[1] + c) * ih * iw
			dstBase := (b*C + c) * oh * ow
			for y := int64(0); y < oh; y++ {
				sy := y * ih / oh
				for xx := int64(0); xx < ow; xx++ {
					sx := xx * iw / ow
					out.F[dstBase+y*ow+xx] = x.F[srcBase+sy*iw+sx]
				}
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

func topKKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "TopK"); err != nil {
		return nil, err
	}
	x := in[0]
	k := n.AttrInt("k", -1)
	if len(in) > 1 && in[1] != nil && in[1].Len() > 0 {
		k = in[1].I[0]
	}
	axis := n.AttrInt("axis", -1)
	if axis < 0 {
		axis += int64(x.Rank())
	}
	if int(axis) != x.Rank()-1 {
		return nil, fmt.Errorf("TopK: only last axis supported")
	}
	inner := x.Shape[x.Rank()-1]
	if k < 0 || k > inner {
		return nil, fmt.Errorf("TopK: k=%d of %d", k, inner)
	}
	outer := x.Len() / inner
	outShape := append([]int64{}, x.Shape...)
	outShape[axis] = k
	vals := tensor.New(tensor.Float32, outShape...)
	idxs := tensor.New(tensor.Int64, outShape...)
	type pair struct {
		v float32
		i int64
	}
	for o := int64(0); o < outer; o++ {
		row := x.F[o*inner : (o+1)*inner]
		ps := make([]pair, inner)
		for i, v := range row {
			ps[i] = pair{v, int64(i)}
		}
		sort.Slice(ps, func(a, b int) bool {
			if ps[a].v != ps[b].v {
				return ps[a].v > ps[b].v
			}
			return ps[a].i < ps[b].i
		})
		for i := int64(0); i < k; i++ {
			vals.F[o*k+i] = ps[i].v
			idxs.I[o*k+i] = ps[i].i
		}
	}
	return []*tensor.Tensor{vals, idxs}, nil
}

func argExtremeKernel(isMax bool) Kernel {
	return func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, n.OpType); err != nil {
			return nil, err
		}
		x := in[0]
		axis := n.AttrInt("axis", 0)
		if axis < 0 {
			axis += int64(x.Rank())
		}
		keep := n.AttrInt("keepdims", 1) != 0
		outer := tensor.NumElems(x.Shape[:axis])
		axisLen := x.Shape[axis]
		inner := tensor.NumElems(x.Shape[axis+1:])
		var outShape []int64
		for i, d := range x.Shape {
			if int64(i) == axis {
				if keep {
					outShape = append(outShape, 1)
				}
				continue
			}
			outShape = append(outShape, d)
		}
		out := tensor.New(tensor.Int64, outShape...)
		for o := int64(0); o < outer; o++ {
			for i := int64(0); i < inner; i++ {
				best := x.F[o*axisLen*inner+i]
				bestIdx := int64(0)
				for a := int64(1); a < axisLen; a++ {
					v := x.F[(o*axisLen+a)*inner+i]
					if (isMax && v > best) || (!isMax && v < best) {
						best, bestIdx = v, a
					}
				}
				out.I[o*inner+i] = bestIdx
			}
		}
		return []*tensor.Tensor{out}, nil
	}
}

func reduceKernel(init float32, acc func(a, v float32) float32, finish func(a float32, n int64) float32) Kernel {
	return func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, n.OpType); err != nil {
			return nil, err
		}
		x := in[0]
		axes := n.AttrInts("axes", nil)
		if len(in) > 1 && in[1] != nil {
			axes = in[1].I
		}
		keep := n.AttrInt("keepdims", 1) != 0
		reduceAll := len(axes) == 0
		isReduced := make([]bool, x.Rank())
		for _, a := range axes {
			if a < 0 {
				a += int64(x.Rank())
			}
			isReduced[a] = true
		}
		if reduceAll {
			for i := range isReduced {
				isReduced[i] = true
			}
		}
		var outShape []int64
		var reducedCount int64 = 1
		for i, d := range x.Shape {
			if isReduced[i] {
				reducedCount *= d
				if keep {
					outShape = append(outShape, 1)
				}
			} else {
				outShape = append(outShape, d)
			}
		}
		out := tensor.New(tensor.Float32, outShape...)
		for i := range out.F {
			out.F[i] = init
		}
		inStrides := tensor.Strides(x.Shape)
		// Compute the output flat index for each input element.
		outStridesKept := make([]int64, x.Rank())
		{
			stride := int64(1)
			for i := x.Rank() - 1; i >= 0; i-- {
				if isReduced[i] {
					outStridesKept[i] = 0
				} else {
					outStridesKept[i] = stride
					stride *= x.Shape[i]
				}
			}
		}
		idx := make([]int64, x.Rank())
		for flat := int64(0); flat < x.Len(); flat++ {
			rem := flat
			var dst int64
			for i := range idx {
				idx[i] = rem / inStrides[i]
				rem %= inStrides[i]
				dst += idx[i] * outStridesKept[i]
			}
			out.F[dst] = acc(out.F[dst], x.F[flat])
		}
		if finish != nil {
			for i := range out.F {
				out.F[i] = finish(out.F[i], reducedCount)
			}
		}
		return []*tensor.Tensor{out}, nil
	}
}

func nonZeroKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "NonZero"); err != nil {
		return nil, err
	}
	x := in[0]
	strides := tensor.Strides(x.Shape)
	var hits []int64
	for flat := int64(0); flat < x.Len(); flat++ {
		var nz bool
		switch x.DType {
		case tensor.Float32:
			nz = x.F[flat] != 0
		case tensor.Int64:
			nz = x.I[flat] != 0
		case tensor.Bool:
			nz = x.B[flat]
		}
		if nz {
			hits = append(hits, flat)
		}
	}
	out := tensor.New(tensor.Int64, int64(x.Rank()), int64(len(hits)))
	for c, flat := range hits {
		rem := flat
		for d := 0; d < x.Rank(); d++ {
			out.I[int64(d)*int64(len(hits))+int64(c)] = rem / strides[d]
			rem %= strides[d]
		}
	}
	return []*tensor.Tensor{out}, nil
}

func oneHotKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "OneHot"); err != nil {
		return nil, err
	}
	idx := in[0]
	depth := in[1].I[0]
	onVal, offVal := float32(1), float32(0)
	if len(in) > 2 && in[2] != nil && in[2].Len() == 2 {
		offVal, onVal = in[2].F[0], in[2].F[1]
	}
	outShape := append(append([]int64{}, idx.Shape...), depth)
	out := tensor.New(tensor.Float32, outShape...)
	for i := range out.F {
		out.F[i] = offVal
	}
	for i := int64(0); i < idx.Len(); i++ {
		v := idx.I[i]
		if v < 0 {
			v += depth
		}
		if v >= 0 && v < depth {
			out.F[i*depth+v] = onVal
		}
	}
	return []*tensor.Tensor{out}, nil
}

// nmsKernel is a simplified single-class NonMaxSuppression over
// boxes [1, N, 4] and scores [1, 1, N], returning selected indices
// [num, 3] like ONNX.
func nmsKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "NonMaxSuppression"); err != nil {
		return nil, err
	}
	boxes, scores := in[0], in[1]
	maxOut := int64(1 << 30)
	if len(in) > 2 && in[2] != nil && in[2].Len() > 0 {
		maxOut = in[2].I[0]
	}
	iouThresh := float32(0.5)
	if len(in) > 3 && in[3] != nil && in[3].Len() > 0 {
		iouThresh = in[3].F[0]
	}
	scoreThresh := float32(math.Inf(-1))
	if len(in) > 4 && in[4] != nil && in[4].Len() > 0 {
		scoreThresh = in[4].F[0]
	}
	nBox := boxes.Shape[1]
	order := make([]int64, 0, nBox)
	for i := int64(0); i < nBox; i++ {
		if scores.F[i] >= scoreThresh {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return scores.F[order[a]] > scores.F[order[b]] })
	iou := func(a, b int64) float32 {
		ax1, ay1, ax2, ay2 := boxes.F[a*4], boxes.F[a*4+1], boxes.F[a*4+2], boxes.F[a*4+3]
		bx1, by1, bx2, by2 := boxes.F[b*4], boxes.F[b*4+1], boxes.F[b*4+2], boxes.F[b*4+3]
		ix1, iy1 := maxf(ax1, bx1), maxf(ay1, by1)
		ix2, iy2 := minf(ax2, bx2), minf(ay2, by2)
		iw, ih := maxf(ix2-ix1, 0), maxf(iy2-iy1, 0)
		inter := iw * ih
		areaA := (ax2 - ax1) * (ay2 - ay1)
		areaB := (bx2 - bx1) * (by2 - by1)
		union := areaA + areaB - inter
		if union <= 0 {
			return 0
		}
		return inter / union
	}
	var selected []int64
	for _, cand := range order {
		if int64(len(selected)) >= maxOut {
			break
		}
		ok := true
		for _, s := range selected {
			if iou(cand, s) > iouThresh {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, cand)
		}
	}
	out := tensor.New(tensor.Int64, int64(len(selected)), 3)
	for i, s := range selected {
		out.I[i*3+2] = s
	}
	return []*tensor.Tensor{out}, nil
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func init() {
	register("Shape", shapeKernel)
	register("Size", sizeKernel)
	register("Reshape", reshapeKernel)
	register("Flatten", flattenKernel)
	register("Squeeze", squeezeKernel)
	register("Unsqueeze", unsqueezeKernel)
	register("Transpose", transposeKernel)
	register("Concat", concatKernel)
	register("Split", splitKernel)
	register("Gather", gatherKernel)
	register("Slice", sliceKernel)
	register("Expand", expandKernel)
	register("Range", rangeKernel)
	register("ConstantOfShape", constantOfShapeKernel)
	register("EyeLike", eyeLikeKernel)
	register("Pad", padKernel)
	register("Tile", tileKernel)
	register("Resize", resizeKernel)
	register("Upsample", resizeKernel)
	register("TopK", topKKernel)
	register("ArgMax", argExtremeKernel(true))
	register("ArgMin", argExtremeKernel(false))
	register("NonZero", nonZeroKernel)
	register("OneHot", oneHotKernel)
	register("NonMaxSuppression", nmsKernel)

	register("ReduceSum", reduceKernel(0, func(a, v float32) float32 { return a + v }, nil))
	register("ReduceMean", reduceKernel(0, func(a, v float32) float32 { return a + v },
		func(a float32, n int64) float32 { return a / float32(n) }))
	register("ReduceMax", reduceKernel(float32(math.Inf(-1)), maxf, nil))
	register("ReduceMin", reduceKernel(float32(math.Inf(1)), minf, nil))
	register("ReduceProd", reduceKernel(1, func(a, v float32) float32 { return a * v }, nil))
	register("ReduceL2", reduceKernel(0, func(a, v float32) float32 { return a + v*v },
		func(a float32, n int64) float32 { return float32(math.Sqrt(float64(a))) }))
}
