package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// cumSumKernel computes the running sum along an axis.
func cumSumKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "CumSum"); err != nil {
		return nil, err
	}
	x := in[0]
	axis := int64(0)
	if len(in) > 1 && in[1] != nil && in[1].Len() > 0 {
		axis = in[1].I[0]
	}
	if axis < 0 {
		axis += int64(x.Rank())
	}
	exclusive := n.AttrInt("exclusive", 0) != 0
	reverse := n.AttrInt("reverse", 0) != 0
	out := tensor.New(tensor.Float32, x.Shape...)
	outer := tensor.NumElems(x.Shape[:axis])
	axisLen := x.Shape[axis]
	inner := tensor.NumElems(x.Shape[axis+1:])
	for o := int64(0); o < outer; o++ {
		for i := int64(0); i < inner; i++ {
			var acc float32
			for a := int64(0); a < axisLen; a++ {
				idx := a
				if reverse {
					idx = axisLen - 1 - a
				}
				flat := (o*axisLen+idx)*inner + i
				if exclusive {
					out.F[flat] = acc
					acc += x.F[flat]
				} else {
					acc += x.F[flat]
					out.F[flat] = acc
				}
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

// triluKernel keeps the upper (upper=1) or lower triangle of the last
// two dims, zeroing the rest; k shifts the diagonal.
func triluKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "Trilu"); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() < 2 {
		return nil, fmt.Errorf("Trilu: rank %d", x.Rank())
	}
	upper := n.AttrInt("upper", 1) != 0
	k := int64(0)
	if len(in) > 1 && in[1] != nil && in[1].Len() > 0 {
		k = in[1].I[0]
	}
	rows := x.Shape[x.Rank()-2]
	cols := x.Shape[x.Rank()-1]
	batch := x.Len() / (rows * cols)
	out := x.Clone()
	for b := int64(0); b < batch; b++ {
		base := b * rows * cols
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				keep := c >= r+k // upper
				if !upper {
					keep = c <= r+k
				}
				if !keep {
					out.F[base+r*cols+c] = 0
				}
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

// scatterElementsKernel writes updates into a copy of data at the
// indices along axis (ONNX ScatterElements, reduction=none).
func scatterElementsKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 3, "ScatterElements"); err != nil {
		return nil, err
	}
	data, indices, updates := in[0], in[1], in[2]
	axis := n.AttrInt("axis", 0)
	if axis < 0 {
		axis += int64(data.Rank())
	}
	out := data.Clone()
	strides := tensor.Strides(data.Shape)
	idxStrides := tensor.Strides(indices.Shape)
	coord := make([]int64, indices.Rank())
	for flat := int64(0); flat < indices.Len(); flat++ {
		rem := flat
		for i := range coord {
			coord[i] = rem / idxStrides[i]
			rem %= idxStrides[i]
		}
		target := indices.I[flat]
		if target < 0 {
			target += data.Shape[axis]
		}
		if target < 0 || target >= data.Shape[axis] {
			return nil, fmt.Errorf("ScatterElements: index %d out of range", target)
		}
		var dst int64
		for i, c := range coord {
			v := c
			if int64(i) == axis {
				v = target
			}
			dst += v * strides[i]
		}
		out.F[dst] = updates.F[flat]
	}
	return []*tensor.Tensor{out}, nil
}

func init() {
	register("CumSum", cumSumKernel)
	register("Trilu", triluKernel)
	register("ScatterElements", scatterElementsKernel)
	registerUnaryF("Softsign", func(v float32) float32 { return v / (1 + float32(math.Abs(float64(v)))) })
	registerUnaryF("Sin", func(v float32) float32 { return float32(math.Sin(float64(v))) })
	registerUnaryF("Cos", func(v float32) float32 { return float32(math.Cos(float64(v))) })
	register("ThresholdedRelu", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "ThresholdedRelu"); err != nil {
			return nil, err
		}
		alpha := float32(n.AttrFloat("alpha", 1.0))
		x := in[0]
		out := tensor.New(tensor.Float32, x.Shape...)
		for i, v := range x.F {
			if v > alpha {
				out.F[i] = v
			}
		}
		return []*tensor.Tensor{out}, nil
	})
}
