package kernels

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestGemmParallelAgrees(t *testing.T) {
	rng := tensor.NewRNG(19)
	m, k, n := int64(37), int64(19), int64(23)
	a := tensor.RandomFloats(rng, 1, m, k)
	b := tensor.RandomFloats(rng, 1, k, n)
	ref := make([]float32, m*n)
	Gemm(GemmNaive, a.F, b.F, m, k, n, ref)
	for _, threads := range []int{1, 2, 4, 8, 64} {
		c := make([]float32, m*n)
		GemmParallel(GemmTiledRegular, threads, a.F, b.F, m, k, n, c)
		for i := range ref {
			if diff := ref[i] - c[i]; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("threads=%d: mismatch at %d", threads, i)
			}
		}
	}
}

func TestGemmParallelTinyMatrixFallsBack(t *testing.T) {
	// m < threads must not deadlock or drop rows.
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := make([]float32, 1)
	GemmParallel(GemmTiledRegular, 8, a, b, 1, 2, 1, c)
	if c[0] != 11 {
		t.Errorf("c = %v", c)
	}
}

func TestConvParallelDirectAgrees(t *testing.T) {
	rng := tensor.NewRNG(23)
	x := tensor.RandomFloats(rng, 1, 1, 3, 9, 9)
	w := tensor.RandomFloats(rng, 1, 8, 3, 3, 3)
	n := &graph.Node{Name: "c", OpType: "Conv", Outputs: []string{"y"},
		Attrs: map[string]graph.AttrValue{"pads": graph.IntsAttr(1, 1, 1, 1)}}
	a, err := convArgsFor(n, x, w)
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(tensor.Float32, 1, 8, 9, 9)
	convDirect(x, w, ref, a)
	for _, threads := range []int{2, 3, 8} {
		out := tensor.New(tensor.Float32, 1, 8, 9, 9)
		ConvParallelDirect(x, w, out, a, threads)
		if !tensor.AllClose(ref, out, 1e-4) {
			t.Fatalf("threads=%d disagrees", threads)
		}
	}
}

func TestConvParallelGroupedFallsBack(t *testing.T) {
	rng := tensor.NewRNG(29)
	x := tensor.RandomFloats(rng, 1, 1, 4, 6, 6)
	w := tensor.RandomFloats(rng, 1, 4, 1, 3, 3)
	n := &graph.Node{Name: "c", OpType: "Conv", Outputs: []string{"y"},
		Attrs: map[string]graph.AttrValue{
			"pads": graph.IntsAttr(1, 1, 1, 1), "group": graph.IntAttr(4)}}
	a, err := convArgsFor(n, x, w)
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(tensor.Float32, 1, 4, 6, 6)
	convDirect(x, w, ref, a)
	out := tensor.New(tensor.Float32, 1, 4, 6, 6)
	ConvParallelDirect(x, w, out, a, 4)
	if !tensor.AllClose(ref, out, 1e-5) {
		t.Fatal("grouped fallback disagrees")
	}
}
