package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// spaceToDepthKernel rearranges [N, C, H, W] → [N, C·b², H/b, W/b]
// (YOLO-style Focus/slice stems use it to trade resolution for channels).
func spaceToDepthKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "SpaceToDepth"); err != nil {
		return nil, err
	}
	x := in[0]
	b := n.AttrInt("blocksize", 2)
	if x.Rank() != 4 || b <= 0 {
		return nil, fmt.Errorf("SpaceToDepth: rank %d blocksize %d", x.Rank(), b)
	}
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if H%b != 0 || W%b != 0 {
		return nil, fmt.Errorf("SpaceToDepth: %dx%d not divisible by %d", H, W, b)
	}
	oh, ow := H/b, W/b
	out := tensor.New(tensor.Float32, N, C*b*b, oh, ow)
	for bn := int64(0); bn < N; bn++ {
		for c := int64(0); c < C; c++ {
			for by := int64(0); by < b; by++ {
				for bx := int64(0); bx < b; bx++ {
					oc := c*b*b + by*b + bx
					for y := int64(0); y < oh; y++ {
						for xx := int64(0); xx < ow; xx++ {
							src := ((bn*C+c)*H+(y*b+by))*W + (xx*b + bx)
							dst := ((bn*C*b*b+oc)*oh+y)*ow + xx
							out.F[dst] = x.F[src]
						}
					}
				}
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

// depthToSpaceKernel is the inverse: [N, C·b², H, W] → [N, C, H·b, W·b]
// (DCR mode).
func depthToSpaceKernel(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "DepthToSpace"); err != nil {
		return nil, err
	}
	x := in[0]
	b := n.AttrInt("blocksize", 2)
	if x.Rank() != 4 || b <= 0 {
		return nil, fmt.Errorf("DepthToSpace: rank %d blocksize %d", x.Rank(), b)
	}
	N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if C%(b*b) != 0 {
		return nil, fmt.Errorf("DepthToSpace: C=%d not divisible by %d", C, b*b)
	}
	oc := C / (b * b)
	out := tensor.New(tensor.Float32, N, oc, H*b, W*b)
	for bn := int64(0); bn < N; bn++ {
		for c := int64(0); c < oc; c++ {
			for by := int64(0); by < b; by++ {
				for bx := int64(0); bx < b; bx++ {
					ic := c*b*b + by*b + bx
					for y := int64(0); y < H; y++ {
						for xx := int64(0); xx < W; xx++ {
							src := ((bn*C+ic)*H+y)*W + xx
							dst := ((bn*oc+c)*(H*b)+(y*b+by))*(W*b) + (xx*b + bx)
							out.F[dst] = x.F[src]
						}
					}
				}
			}
		}
	}
	return []*tensor.Tensor{out}, nil
}

func init() {
	register("SpaceToDepth", spaceToDepthKernel)
	register("DepthToSpace", depthToSpaceKernel)
}
