package kernels

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// GemmVariant identifies one generated code version of the GEMM kernel.
// The MVC subsystem (paper §4.4.2) selects among these based on the
// RDP-predicted shape regime: fat (m ≫ n), skinny (n ≫ m), tiny, and
// regular tiled schedules.
type GemmVariant uint8

// GEMM schedule variants.
const (
	GemmNaive GemmVariant = iota
	GemmTiledRegular
	GemmRowMajorFat
	GemmColMajorSkinny
	GemmTiny
)

func (v GemmVariant) String() string {
	switch v {
	case GemmNaive:
		return "naive"
	case GemmTiledRegular:
		return "tiled-regular"
	case GemmRowMajorFat:
		return "row-major-fat"
	case GemmColMajorSkinny:
		return "col-major-skinny"
	case GemmTiny:
		return "tiny"
	default:
		return "unknown"
	}
}

// GemmVariants lists all selectable variants.
func GemmVariants() []GemmVariant {
	return []GemmVariant{GemmNaive, GemmTiledRegular, GemmRowMajorFat, GemmColMajorSkinny, GemmTiny}
}

// SelectGemmVariant picks the schedule the auto-tuner associates with the
// (m, k, n) regime — the empirical shape→version mapping of §4.4.2.
func SelectGemmVariant(m, k, n int64) GemmVariant {
	switch {
	case m*n <= 64:
		return GemmTiny
	case m >= 4*n:
		return GemmRowMajorFat
	case n >= 4*m:
		return GemmColMajorSkinny
	default:
		return GemmTiledRegular
	}
}

// Gemm computes C[m,n] = A[m,k] × B[k,n] with the chosen variant. All
// variants compute identical results; they differ in loop order and
// blocking (observable in the wall-clock benchmarks).
func Gemm(variant GemmVariant, a, b []float32, m, k, n int64, c []float32) {
	switch variant {
	case GemmNaive, GemmTiny:
		for i := int64(0); i < m; i++ {
			for j := int64(0); j < n; j++ {
				var acc float32
				for p := int64(0); p < k; p++ {
					acc += a[i*k+p] * b[p*n+j]
				}
				c[i*n+j] = acc
			}
		}
	case GemmRowMajorFat:
		// ikj order: streams B rows, accumulates into C rows — good when
		// m is large relative to n.
		for i := int64(0); i < m; i++ {
			ci := c[i*n : (i+1)*n]
			for p := int64(0); p < k; p++ {
				av := a[i*k+p]
				bp := b[p*n : (p+1)*n]
				for j := int64(0); j < n; j++ {
					ci[j] += av * bp[j]
				}
			}
		}
	case GemmColMajorSkinny:
		// jik order with k-inner accumulation: good when n dominates.
		for j := int64(0); j < n; j++ {
			for i := int64(0); i < m; i++ {
				var acc float32
				for p := int64(0); p < k; p++ {
					acc += a[i*k+p] * b[p*n+j]
				}
				c[i*n+j] = acc
			}
		}
	default: // GemmTiledRegular
		const tile = 32
		for i0 := int64(0); i0 < m; i0 += tile {
			iMax := min64(i0+tile, m)
			for p0 := int64(0); p0 < k; p0 += tile {
				pMax := min64(p0+tile, k)
				for j0 := int64(0); j0 < n; j0 += tile {
					jMax := min64(j0+tile, n)
					for i := i0; i < iMax; i++ {
						for p := p0; p < pMax; p++ {
							av := a[i*k+p]
							base := p * n
							ci := i * n
							for j := j0; j < jMax; j++ {
								c[ci+j] += av * b[base+j]
							}
						}
					}
				}
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// matmulKernel implements ONNX MatMul with batch broadcasting. The
// "variant" node attribute (set by the MVC pass) selects the schedule;
// the intra-op budget stripes output rows via GemmParallel (bit-identical
// to the sequential schedule — per-element accumulation order is
// unchanged by row striping).
func matmulKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "MatMul"); err != nil {
		return nil, err
	}
	a, b := in[0], in[1]
	if a.Rank() < 2 || b.Rank() < 2 {
		return nil, fmt.Errorf("MatMul: ranks %d,%d unsupported", a.Rank(), b.Rank())
	}
	m := a.Shape[a.Rank()-2]
	k := a.Shape[a.Rank()-1]
	k2 := b.Shape[b.Rank()-2]
	nn := b.Shape[b.Rank()-1]
	if k != k2 {
		return nil, fmt.Errorf("MatMul: inner dims %d vs %d", k, k2)
	}
	batchA := a.Shape[:a.Rank()-2]
	batchB := b.Shape[:b.Rank()-2]
	batch, err := tensor.BroadcastShapes(batchA, batchB)
	if err != nil {
		return nil, err
	}
	outShape := append(append([]int64{}, batch...), m, nn)
	out := tensor.New(tensor.Float32, outShape...)
	if b.DType.IsQuantized() {
		if err := matmulQuant(a, b, m, k, nn, out, threads); err != nil {
			return nil, err
		}
		return []*tensor.Tensor{out}, nil
	}
	variant := GemmVariant(n.AttrInt("variant", int64(GemmTiledRegular)))
	if v := n.AttrInt("auto_variant", 0); v != 0 {
		variant = SelectGemmVariant(m, k, nn)
	}
	nBatch := tensor.NumElems(batch)
	if nBatch > 1 && int64(threads) > 1 {
		// Batched case: stripe across batch entries (each writes a
		// disjoint out slab); large single matmuls stripe rows instead.
		ParallelForGrain(threads, nBatch, 1, func(lo, hi int64) {
			for bi := lo; bi < hi; bi++ {
				aOff := tensor.BroadcastIndex(batchA, batch, bi) * m * k
				bOff := tensor.BroadcastIndex(batchB, batch, bi) * k * nn
				Gemm(variant, a.F[aOff:aOff+m*k], b.F[bOff:bOff+k*nn], m, k, nn, out.F[bi*m*nn:(bi+1)*m*nn])
			}
		})
		return []*tensor.Tensor{out}, nil
	}
	for bi := int64(0); bi < nBatch; bi++ {
		aOff := tensor.BroadcastIndex(batchA, batch, bi) * m * k
		bOff := tensor.BroadcastIndex(batchB, batch, bi) * k * nn
		GemmParallel(variant, threads, a.F[aOff:aOff+m*k], b.F[bOff:bOff+k*nn], m, k, nn, out.F[bi*m*nn:(bi+1)*m*nn])
	}
	return []*tensor.Tensor{out}, nil
}

func gemmKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Gemm"); err != nil {
		return nil, err
	}
	// Gemm's transpose attributes make a fused packed path unattractive;
	// quantized operands (rare here — MVC routes weights at MatMul/Conv)
	// unpack up front.
	a, b := dequantIfNeeded(in[0]), dequantIfNeeded(in[1])
	alpha := float32(n.AttrFloat("alpha", 1))
	beta := float32(n.AttrFloat("beta", 1))
	transA := n.AttrInt("transA", 0) != 0
	transB := n.AttrInt("transB", 0) != 0
	am, ak := a.Shape[0], a.Shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Shape[0], b.Shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk {
		return nil, fmt.Errorf("Gemm: inner dims %d vs %d", ak, bk)
	}
	out := tensor.New(tensor.Float32, am, bn)
	at := func(i, p int64) float32 {
		if transA {
			return a.F[p*a.Shape[1]+i]
		}
		return a.F[i*a.Shape[1]+p]
	}
	bt := func(p, j int64) float32 {
		if transB {
			return b.F[j*b.Shape[1]+p]
		}
		return b.F[p*b.Shape[1]+j]
	}
	ParallelForGrain(threads, am, rowGrain(ak*bn), func(iLo, iHi int64) {
		for i := iLo; i < iHi; i++ {
			for j := int64(0); j < bn; j++ {
				var acc float32
				for p := int64(0); p < ak; p++ {
					acc += at(i, p) * bt(p, j)
				}
				out.F[i*bn+j] = alpha * acc
			}
		}
	})
	if len(in) > 2 && in[2] != nil && beta != 0 {
		c := in[2]
		for i := int64(0); i < out.Len(); i++ {
			out.F[i] += beta * c.F[tensor.BroadcastIndex(c.Shape, out.Shape, i)]
		}
	}
	return []*tensor.Tensor{out}, nil
}

func init() {
	register("MatMul", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return matmulKernel(n, in, 1)
	})
	registerBudgeted("MatMul", matmulKernel)
	register("Gemm", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return gemmKernel(n, in, 1)
	})
	registerBudgeted("Gemm", gemmKernel)
}
