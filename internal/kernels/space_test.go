package kernels

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestSpaceToDepthRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(31)
	x := tensor.RandomFloats(rng, 1, 1, 3, 4, 4)
	attrs := map[string]graph.AttrValue{"blocksize": graph.IntAttr(2)}
	s2d := run1(t, "SpaceToDepth", attrs, x)
	if !tensor.SameShape(s2d.Shape, []int64{1, 12, 2, 2}) {
		t.Fatalf("s2d shape %v", s2d.Shape)
	}
	back := run1(t, "DepthToSpace", attrs, s2d)
	if !tensor.AllClose(x, back, 0) {
		t.Fatal("round trip lost data")
	}
}

func TestSpaceToDepthValues(t *testing.T) {
	// 1×1×2×2 with blocksize 2 → 1×4×1×1 in (by,bx) order.
	x := tensor.FromFloats([]int64{1, 1, 2, 2}, []float32{1, 2, 3, 4})
	out := run1(t, "SpaceToDepth", map[string]graph.AttrValue{"blocksize": graph.IntAttr(2)}, x)
	want := []float32{1, 2, 3, 4}
	for i, v := range want {
		if out.F[i] != v {
			t.Fatalf("out = %v", out.F)
		}
	}
}

func TestSpaceToDepthErrors(t *testing.T) {
	x := tensor.New(tensor.Float32, 1, 1, 3, 3) // not divisible by 2
	if _, err := Run(mkNode("SpaceToDepth", map[string]graph.AttrValue{
		"blocksize": graph.IntAttr(2)}, 1), []*tensor.Tensor{x}); err == nil {
		t.Error("expected divisibility error")
	}
	y := tensor.New(tensor.Float32, 1, 3, 2, 2) // C not divisible by b²
	if _, err := Run(mkNode("DepthToSpace", map[string]graph.AttrValue{
		"blocksize": graph.IntAttr(2)}, 1), []*tensor.Tensor{y}); err == nil {
		t.Error("expected channel-divisibility error")
	}
}
