package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ConvVariant identifies one generated code version of the CONV kernel
// (direct vs im2col+GEMM; MVC picks per shape regime).
type ConvVariant uint8

// CONV schedule variants.
const (
	ConvDirect ConvVariant = iota
	ConvIm2col
)

func (v ConvVariant) String() string {
	if v == ConvIm2col {
		return "im2col"
	}
	return "direct"
}

// SelectConvVariant chooses im2col+GEMM for compute-heavy regimes and the
// direct loop for small channel counts / 1×1 kernels.
func SelectConvVariant(cin, kh, kw int64) ConvVariant {
	if cin*kh*kw >= 32 {
		return ConvIm2col
	}
	return ConvDirect
}

type conv2dArgs struct {
	n, cin, h, w           int64
	cout, cinPerGroup      int64
	kh, kw                 int64
	strideH, strideW       int64
	padT, padL, padB, padR int64
	dilH, dilW, group      int64
	outH, outW             int64
}

func convArgsFor(n *graph.Node, x, w *tensor.Tensor) (conv2dArgs, error) {
	var a conv2dArgs
	if x.Rank() != 4 || w.Rank() != 4 {
		return a, fmt.Errorf("Conv: only 2-D conv supported (x rank %d, w rank %d)", x.Rank(), w.Rank())
	}
	a.n, a.cin, a.h, a.w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	a.cout, a.cinPerGroup, a.kh, a.kw = w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	strides := n.AttrInts("strides", []int64{1, 1})
	pads := n.AttrInts("pads", []int64{0, 0, 0, 0})
	dil := n.AttrInts("dilations", []int64{1, 1})
	a.strideH, a.strideW = strides[0], strides[1]
	a.padT, a.padL, a.padB, a.padR = pads[0], pads[1], pads[2], pads[3]
	a.dilH, a.dilW = dil[0], dil[1]
	a.group = n.AttrInt("group", 1)
	effH := (a.kh-1)*a.dilH + 1
	effW := (a.kw-1)*a.dilW + 1
	a.outH = (a.h+a.padT+a.padB-effH)/a.strideH + 1
	a.outW = (a.w+a.padL+a.padR-effW)/a.strideW + 1
	if a.outH <= 0 || a.outW <= 0 {
		return a, fmt.Errorf("Conv: non-positive output %dx%d", a.outH, a.outW)
	}
	if a.cin != a.cinPerGroup*a.group {
		return a, fmt.Errorf("Conv: cin %d != %d*%d", a.cin, a.cinPerGroup, a.group)
	}
	return a, nil
}

func convKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 2, "Conv"); err != nil {
		return nil, err
	}
	x, w := in[0], in[1]
	a, err := convArgsFor(n, x, w)
	if err != nil {
		return nil, err
	}
	out := tensor.New(tensor.Float32, a.n, a.cout, a.outH, a.outW)
	variant := ConvVariant(n.AttrInt("conv_variant", int64(ConvIm2col)))
	if v := n.AttrInt("auto_variant", 0); v != 0 {
		variant = SelectConvVariant(a.cinPerGroup, a.kh, a.kw)
	}
	if w.DType.IsQuantized() {
		if variant == ConvDirect {
			// Direct is only selected for tiny filters — unpack once
			// rather than paying per-tap nibble decodes.
			w = w.Dequantize()
		} else {
			if err := convIm2colQuant(x, w, out, a, threads); err != nil {
				return nil, err
			}
			addConvBias(in, out, a)
			return []*tensor.Tensor{out}, nil
		}
	}
	switch {
	case variant == ConvDirect && threads > 1:
		ConvParallelDirect(x, w, out, a, threads)
	case variant == ConvDirect:
		convDirect(x, w, out, a)
	default:
		convIm2col(x, w, out, a, threads)
	}
	addConvBias(in, out, a)
	return []*tensor.Tensor{out}, nil
}

// addConvBias adds the optional per-channel bias input in place.
func addConvBias(in []*tensor.Tensor, out *tensor.Tensor, a conv2dArgs) {
	if len(in) <= 2 || in[2] == nil {
		return
	}
	bias := in[2]
	plane := a.outH * a.outW
	for b := int64(0); b < a.n; b++ {
		for c := int64(0); c < a.cout; c++ {
			base := (b*a.cout + c) * plane
			bv := bias.F[c]
			for i := int64(0); i < plane; i++ {
				out.F[base+i] += bv
			}
		}
	}
}

func convDirect(x, w, out *tensor.Tensor, a conv2dArgs) {
	convDirectStripe(x, w, out, a, 0, a.cout)
}

// convDirectStripe computes output channels [ocLo, ocHi) only — the unit
// of work ConvParallelDirect distributes across goroutines. For grouped
// convolutions it is only called with the full range.
func convDirectStripe(x, w, out *tensor.Tensor, a conv2dArgs, ocLo, ocHi int64) {
	coutPerGroup := a.cout / a.group
	for b := int64(0); b < a.n; b++ {
		for g := int64(0); g < a.group; g++ {
			for oc := int64(0); oc < coutPerGroup; oc++ {
				c := g*coutPerGroup + oc
				if c < ocLo || c >= ocHi {
					continue
				}
				for oh := int64(0); oh < a.outH; oh++ {
					for ow := int64(0); ow < a.outW; ow++ {
						var acc float32
						for ic := int64(0); ic < a.cinPerGroup; ic++ {
							inC := g*a.cinPerGroup + ic
							for kh := int64(0); kh < a.kh; kh++ {
								ih := oh*a.strideH - a.padT + kh*a.dilH
								if ih < 0 || ih >= a.h {
									continue
								}
								for kw := int64(0); kw < a.kw; kw++ {
									iw := ow*a.strideW - a.padL + kw*a.dilW
									if iw < 0 || iw >= a.w {
										continue
									}
									acc += x.F[((b*a.cin+inC)*a.h+ih)*a.w+iw] *
										w.F[((c*a.cinPerGroup+ic)*a.kh+kh)*a.kw+kw]
								}
							}
						}
						out.F[((b*a.cout+c)*a.outH+oh)*a.outW+ow] = acc
					}
				}
			}
		}
	}
}

// convIm2col lowers convolution to GEMM: per (batch, group), build the
// patch matrix [cinPerGroup*kh*kw, outH*outW] and multiply by the weight
// matrix [coutPerGroup, cinPerGroup*kh*kw]. The intra-op budget stripes
// the GEMM's output rows.
func convIm2col(x, w, out *tensor.Tensor, a conv2dArgs, threads int) {
	coutPerGroup := a.cout / a.group
	k := a.cinPerGroup * a.kh * a.kw
	cols := a.outH * a.outW
	patch := make([]float32, k*cols)
	for b := int64(0); b < a.n; b++ {
		for g := int64(0); g < a.group; g++ {
			im2colPatch(x, patch, a, b, g, cols)
			// GEMM: [coutPerGroup, k] × [k, cols]
			wMat := w.F[g*coutPerGroup*k : (g+1)*coutPerGroup*k]
			outMat := out.F[((b*a.cout)+g*coutPerGroup)*cols : ((b*a.cout)+(g+1)*coutPerGroup)*cols]
			for i := range outMat {
				outMat[i] = 0
			}
			GemmParallel(GemmTiledRegular, threads, wMat, patch, coutPerGroup, k, cols, outMat)
		}
	}
}

// im2colPatch fills patch [cinPerGroup*kh*kw, cols] for one (batch,
// group) pair — shared by the float and quantized im2col paths.
func im2colPatch(x *tensor.Tensor, patch []float32, a conv2dArgs, b, g, cols int64) {
	row := int64(0)
	for ic := int64(0); ic < a.cinPerGroup; ic++ {
		inC := g*a.cinPerGroup + ic
		base := (b*a.cin + inC) * a.h * a.w
		for kh := int64(0); kh < a.kh; kh++ {
			for kw := int64(0); kw < a.kw; kw++ {
				dst := patch[row*cols : (row+1)*cols]
				idx := int64(0)
				for oh := int64(0); oh < a.outH; oh++ {
					ih := oh*a.strideH - a.padT + kh*a.dilH
					if ih < 0 || ih >= a.h {
						for ow := int64(0); ow < a.outW; ow++ {
							dst[idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + ih*a.w
					for ow := int64(0); ow < a.outW; ow++ {
						iw := ow*a.strideW - a.padL + kw*a.dilW
						if iw < 0 || iw >= a.w {
							dst[idx] = 0
						} else {
							dst[idx] = x.F[rowBase+iw]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

func poolKernel(avg bool) Kernel {
	return func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, n.OpType); err != nil {
			return nil, err
		}
		x := in[0]
		if x.Rank() != 4 {
			return nil, fmt.Errorf("%s: rank %d unsupported", n.OpType, x.Rank())
		}
		kernel := n.AttrInts("kernel_shape", nil)
		if kernel == nil {
			return nil, fmt.Errorf("%s: missing kernel_shape", n.OpType)
		}
		strides := n.AttrInts("strides", []int64{1, 1})
		pads := n.AttrInts("pads", []int64{0, 0, 0, 0})
		N, C, H, W := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		outH := (H+pads[0]+pads[2]-kernel[0])/strides[0] + 1
		outW := (W+pads[1]+pads[3]-kernel[1])/strides[1] + 1
		out := tensor.New(tensor.Float32, N, C, outH, outW)
		for b := int64(0); b < N; b++ {
			for c := int64(0); c < C; c++ {
				base := (b*C + c) * H * W
				for oh := int64(0); oh < outH; oh++ {
					for ow := int64(0); ow < outW; ow++ {
						var acc float32
						count := int64(0)
						best := float32(math.Inf(-1))
						for kh := int64(0); kh < kernel[0]; kh++ {
							ih := oh*strides[0] - pads[0] + kh
							if ih < 0 || ih >= H {
								continue
							}
							for kw := int64(0); kw < kernel[1]; kw++ {
								iw := ow*strides[1] - pads[1] + kw
								if iw < 0 || iw >= W {
									continue
								}
								v := x.F[base+ih*W+iw]
								acc += v
								count++
								if v > best {
									best = v
								}
							}
						}
						var res float32
						if avg {
							if count > 0 {
								res = acc / float32(count)
							}
						} else {
							res = best
						}
						out.F[((b*C+c)*outH+oh)*outW+ow] = res
					}
				}
			}
		}
		return []*tensor.Tensor{out}, nil
	}
}

func globalPoolKernel(avg bool) Kernel {
	return func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, n.OpType); err != nil {
			return nil, err
		}
		x := in[0]
		if x.Rank() < 3 {
			return nil, fmt.Errorf("%s: rank %d", n.OpType, x.Rank())
		}
		N, C := x.Shape[0], x.Shape[1]
		plane := tensor.NumElems(x.Shape[2:])
		outShape := append([]int64{N, C}, make([]int64, x.Rank()-2)...)
		for i := 2; i < x.Rank(); i++ {
			outShape[i] = 1
		}
		out := tensor.New(tensor.Float32, outShape...)
		for b := int64(0); b < N; b++ {
			for c := int64(0); c < C; c++ {
				base := (b*C + c) * plane
				if avg {
					var acc float32
					for i := int64(0); i < plane; i++ {
						acc += x.F[base+i]
					}
					out.F[b*C+c] = acc / float32(plane)
				} else {
					best := float32(math.Inf(-1))
					for i := int64(0); i < plane; i++ {
						if x.F[base+i] > best {
							best = x.F[base+i]
						}
					}
					out.F[b*C+c] = best
				}
			}
		}
		return []*tensor.Tensor{out}, nil
	}
}

func init() {
	register("Conv", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return convKernel(n, in, 1)
	})
	registerBudgeted("Conv", convKernel)
	register("MaxPool", poolKernel(false))
	register("AveragePool", poolKernel(true))
	register("GlobalAveragePool", globalPoolKernel(true))
	register("GlobalMaxPool", globalPoolKernel(false))
}
