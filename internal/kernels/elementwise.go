package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// binF applies a float binary op with NumPy broadcasting.
func binF(op func(a, b float32) float32) func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
	return func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
		shape, err := tensor.BroadcastShapes(x.Shape, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(tensor.Float32, shape...)
		n := out.Len()
		if tensor.SameShape(x.Shape, shape) && tensor.SameShape(y.Shape, shape) {
			for i := int64(0); i < n; i++ {
				out.F[i] = op(x.F[i], y.F[i])
			}
			return out, nil
		}
		for i := int64(0); i < n; i++ {
			out.F[i] = op(x.F[tensor.BroadcastIndex(x.Shape, shape, i)], y.F[tensor.BroadcastIndex(y.Shape, shape, i)])
		}
		return out, nil
	}
}

func binI(op func(a, b int64) int64) func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
	return func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
		shape, err := tensor.BroadcastShapes(x.Shape, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(tensor.Int64, shape...)
		for i := int64(0); i < out.Len(); i++ {
			out.I[i] = op(x.I[tensor.BroadcastIndex(x.Shape, shape, i)], y.I[tensor.BroadcastIndex(y.Shape, shape, i)])
		}
		return out, nil
	}
}

// binFBudget is binF striped across an intra-op thread budget. Each
// stripe owns a disjoint slice of the output and per-element arithmetic
// is unchanged, so the result is bit-identical to binF for any budget.
func binFBudget(op func(a, b float32) float32, threads int) func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
	return func(x, y *tensor.Tensor) (*tensor.Tensor, error) {
		shape, err := tensor.BroadcastShapes(x.Shape, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(tensor.Float32, shape...)
		n := out.Len()
		if tensor.SameShape(x.Shape, shape) && tensor.SameShape(y.Shape, shape) {
			ParallelFor(threads, n, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					out.F[i] = op(x.F[i], y.F[i])
				}
			})
			return out, nil
		}
		ParallelFor(threads, n, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				out.F[i] = op(x.F[tensor.BroadcastIndex(x.Shape, shape, i)], y.F[tensor.BroadcastIndex(y.Shape, shape, i)])
			}
		})
		return out, nil
	}
}

// registerArith registers a kernel supporting float32 and int64 operands,
// plus a thread-budget-aware variant that stripes the float path.
func registerArith(name string, fop func(a, b float32) float32, iop func(a, b int64) int64) {
	arith := func(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 2, name); err != nil {
			return nil, err
		}
		x, y := in[0], in[1]
		// Weight-only quantization can surface a packed operand here
		// (a quantized scale/bias table): the same-shape case runs the
		// fused row-wise dequant loop, anything else unpacks.
		if y.DType.IsQuantized() && x.DType == tensor.Float32 && tensor.SameShape(x.Shape, y.Shape) {
			return []*tensor.Tensor{binQuantRowwise(fop, x, y)}, nil
		}
		if x.DType.IsQuantized() && y.DType == tensor.Float32 && tensor.SameShape(x.Shape, y.Shape) {
			return []*tensor.Tensor{binQuantRowwise(func(a, b float32) float32 { return fop(b, a) }, y, x)}, nil
		}
		x, y = dequantIfNeeded(x), dequantIfNeeded(y)
		switch {
		case x.DType == tensor.Float32 && y.DType == tensor.Float32:
			out, err := binFBudget(fop, threads)(x, y)
			return []*tensor.Tensor{out}, err
		case x.DType == tensor.Int64 && y.DType == tensor.Int64 && iop != nil:
			out, err := binI(iop)(x, y)
			return []*tensor.Tensor{out}, err
		default:
			return nil, fmt.Errorf("%s: unsupported dtypes %v,%v", name, x.DType, y.DType)
		}
	}
	register(name, func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return arith(n, in, 1)
	})
	registerBudgeted(name, arith)
}

// registerCompare registers a comparison producing a bool tensor.
func registerCompare(name string, fop func(a, b float32) bool, iop func(a, b int64) bool) {
	register(name, func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 2, name); err != nil {
			return nil, err
		}
		x, y := in[0], in[1]
		shape, err := tensor.BroadcastShapes(x.Shape, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(tensor.Bool, shape...)
		for i := int64(0); i < out.Len(); i++ {
			xi := tensor.BroadcastIndex(x.Shape, shape, i)
			yi := tensor.BroadcastIndex(y.Shape, shape, i)
			switch x.DType {
			case tensor.Float32:
				out.B[i] = fop(x.F[xi], y.F[yi])
			case tensor.Int64:
				out.B[i] = iop(x.I[xi], y.I[yi])
			default:
				return nil, fmt.Errorf("%s: unsupported dtype %v", name, x.DType)
			}
		}
		return []*tensor.Tensor{out}, nil
	})
}

// registerUnaryF registers a float unary map kernel plus a
// thread-budget-aware variant striping the element range.
func registerUnaryF(name string, op func(v float32) float32) {
	unary := func(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, name); err != nil {
			return nil, err
		}
		x := in[0]
		out := tensor.New(tensor.Float32, x.Shape...)
		ParallelFor(threads, x.Len(), func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				out.F[i] = op(x.F[i])
			}
		})
		return []*tensor.Tensor{out}, nil
	}
	register(name, func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return unary(n, in, 1)
	})
	registerBudgeted(name, unary)
}

func sigmoid(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }

func erf(v float64) float64 { return math.Erf(v) }

func init() {
	registerArith("Add", func(a, b float32) float32 { return a + b }, func(a, b int64) int64 { return a + b })
	registerArith("Sub", func(a, b float32) float32 { return a - b }, func(a, b int64) int64 { return a - b })
	registerArith("Mul", func(a, b float32) float32 { return a * b }, func(a, b int64) int64 { return a * b })
	registerArith("Div", func(a, b float32) float32 { return a / b }, func(a, b int64) int64 {
		if b == 0 {
			return 0
		}
		q := a / b
		if a%b != 0 && (a < 0) != (b < 0) {
			q--
		}
		return q
	})
	registerArith("Mod", func(a, b float32) float32 { return float32(math.Mod(float64(a), float64(b))) }, func(a, b int64) int64 {
		if b == 0 {
			return 0
		}
		m := a % b
		if m != 0 && (m < 0) != (b < 0) {
			m += b
		}
		return m
	})
	registerArith("Pow", func(a, b float32) float32 { return float32(math.Pow(float64(a), float64(b))) }, nil)
	registerArith("Min", func(a, b float32) float32 {
		if a < b {
			return a
		}
		return b
	}, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
	registerArith("Max", func(a, b float32) float32 {
		if a > b {
			return a
		}
		return b
	}, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	registerArith("PRelu", func(a, b float32) float32 {
		if a >= 0 {
			return a
		}
		return a * b
	}, nil)

	registerCompare("Equal", func(a, b float32) bool { return a == b }, func(a, b int64) bool { return a == b })
	registerCompare("Greater", func(a, b float32) bool { return a > b }, func(a, b int64) bool { return a > b })
	registerCompare("GreaterOrEqual", func(a, b float32) bool { return a >= b }, func(a, b int64) bool { return a >= b })
	registerCompare("Less", func(a, b float32) bool { return a < b }, func(a, b int64) bool { return a < b })
	registerCompare("LessOrEqual", func(a, b float32) bool { return a <= b }, func(a, b int64) bool { return a <= b })

	register("And", boolBinary(func(a, b bool) bool { return a && b }))
	register("Or", boolBinary(func(a, b bool) bool { return a || b }))
	register("Xor", boolBinary(func(a, b bool) bool { return a != b }))

	registerUnaryF("Relu", func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
	registerUnaryF("Sigmoid", sigmoid)
	registerUnaryF("Tanh", func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	registerUnaryF("Exp", func(v float32) float32 { return float32(math.Exp(float64(v))) })
	registerUnaryF("Log", func(v float32) float32 { return float32(math.Log(float64(v))) })
	registerUnaryF("Sqrt", func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
	registerUnaryF("Reciprocal", func(v float32) float32 { return 1 / v })
	registerUnaryF("Neg", func(v float32) float32 { return -v })
	registerUnaryF("Abs", func(v float32) float32 { return float32(math.Abs(float64(v))) })
	registerUnaryF("Floor", func(v float32) float32 { return float32(math.Floor(float64(v))) })
	registerUnaryF("Ceil", func(v float32) float32 { return float32(math.Ceil(float64(v))) })
	registerUnaryF("Round", func(v float32) float32 { return float32(math.RoundToEven(float64(v))) })
	registerUnaryF("Sign", func(v float32) float32 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
	registerUnaryF("Erf", func(v float32) float32 { return float32(erf(float64(v))) })
	registerUnaryF("Gelu", func(v float32) float32 {
		return float32(0.5 * float64(v) * (1 + erf(float64(v)/math.Sqrt2)))
	})
	registerUnaryF("Silu", func(v float32) float32 { return v * sigmoid(v) })
	registerUnaryF("HardSigmoid", func(v float32) float32 {
		h := 0.2*v + 0.5
		if h < 0 {
			return 0
		}
		if h > 1 {
			return 1
		}
		return h
	})
	registerUnaryF("HardSwish", func(v float32) float32 {
		h := (v + 3) / 6
		if h < 0 {
			h = 0
		}
		if h > 1 {
			h = 1
		}
		return v * h
	})
	registerUnaryF("Softplus", func(v float32) float32 { return float32(math.Log1p(math.Exp(float64(v)))) })
	registerUnaryF("Mish", func(v float32) float32 {
		return v * float32(math.Tanh(math.Log1p(math.Exp(float64(v)))))
	})
	registerUnaryF("Elu", func(v float32) float32 {
		if v >= 0 {
			return v
		}
		return float32(math.Exp(float64(v)) - 1)
	})
	registerUnaryF("Selu", func(v float32) float32 {
		const alpha, scale = 1.6732632, 1.0507010
		if v > 0 {
			return scale * v
		}
		return float32(scale * (alpha*math.Exp(float64(v)) - alpha))
	})

	register("LeakyRelu", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "LeakyRelu"); err != nil {
			return nil, err
		}
		alpha := float32(n.AttrFloat("alpha", 0.01))
		x := in[0]
		out := tensor.New(tensor.Float32, x.Shape...)
		for i, v := range x.F {
			if v >= 0 {
				out.F[i] = v
			} else {
				out.F[i] = alpha * v
			}
		}
		return []*tensor.Tensor{out}, nil
	})

	register("Clip", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "Clip"); err != nil {
			return nil, err
		}
		lo := float32(n.AttrFloat("min", math.Inf(-1)))
		hi := float32(n.AttrFloat("max", math.Inf(1)))
		if len(in) > 1 && in[1] != nil && len(in[1].F) == 1 {
			lo = in[1].F[0]
		}
		if len(in) > 2 && in[2] != nil && len(in[2].F) == 1 {
			hi = in[2].F[0]
		}
		x := in[0]
		out := tensor.New(tensor.Float32, x.Shape...)
		for i, v := range x.F {
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			out.F[i] = v
		}
		return []*tensor.Tensor{out}, nil
	})

	register("Not", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "Not"); err != nil {
			return nil, err
		}
		x := in[0]
		out := tensor.New(tensor.Bool, x.Shape...)
		for i, v := range x.B {
			out.B[i] = !v
		}
		return []*tensor.Tensor{out}, nil
	})

	register("Identity", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "Identity"); err != nil {
			return nil, err
		}
		return []*tensor.Tensor{in[0].Clone()}, nil
	})
	register("Dropout", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "Dropout"); err != nil {
			return nil, err
		}
		return []*tensor.Tensor{in[0].Clone()}, nil
	})

	register("Cast", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "Cast"); err != nil {
			return nil, err
		}
		x := in[0]
		to := n.AttrString("to", "float32")
		out := tensor.New(dtypeFromName(to), x.Shape...)
		for i := int64(0); i < x.Len(); i++ {
			var v float64
			switch x.DType {
			case tensor.Float32:
				v = float64(x.F[i])
			case tensor.Int64:
				v = float64(x.I[i])
			case tensor.Bool:
				if x.B[i] {
					v = 1
				}
			}
			switch out.DType {
			case tensor.Float32:
				out.F[i] = float32(v)
			case tensor.Int64:
				out.I[i] = int64(v)
			case tensor.Bool:
				out.B[i] = v != 0
			}
		}
		return []*tensor.Tensor{out}, nil
	})

	register("Where", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 3, "Where"); err != nil {
			return nil, err
		}
		cond, x, y := in[0], in[1], in[2]
		s1, err := tensor.BroadcastShapes(cond.Shape, x.Shape)
		if err != nil {
			return nil, err
		}
		shape, err := tensor.BroadcastShapes(s1, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(x.DType, shape...)
		for i := int64(0); i < out.Len(); i++ {
			c := cond.B[tensor.BroadcastIndex(cond.Shape, shape, i)]
			xi := tensor.BroadcastIndex(x.Shape, shape, i)
			yi := tensor.BroadcastIndex(y.Shape, shape, i)
			switch x.DType {
			case tensor.Float32:
				if c {
					out.F[i] = x.F[xi]
				} else {
					out.F[i] = y.F[yi]
				}
			case tensor.Int64:
				if c {
					out.I[i] = x.I[xi]
				} else {
					out.I[i] = y.I[yi]
				}
			}
		}
		return []*tensor.Tensor{out}, nil
	})

	register("IsNaN", func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, "IsNaN"); err != nil {
			return nil, err
		}
		x := in[0]
		out := tensor.New(tensor.Bool, x.Shape...)
		for i, v := range x.F {
			out.B[i] = math.IsNaN(float64(v))
		}
		return []*tensor.Tensor{out}, nil
	})
}

func boolBinary(op func(a, b bool) bool) Kernel {
	return func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 2, n.OpType); err != nil {
			return nil, err
		}
		x, y := in[0], in[1]
		shape, err := tensor.BroadcastShapes(x.Shape, y.Shape)
		if err != nil {
			return nil, err
		}
		out := tensor.New(tensor.Bool, shape...)
		for i := int64(0); i < out.Len(); i++ {
			out.B[i] = op(x.B[tensor.BroadcastIndex(x.Shape, shape, i)], y.B[tensor.BroadcastIndex(y.Shape, shape, i)])
		}
		return []*tensor.Tensor{out}, nil
	}
}

func dtypeFromName(s string) tensor.DType {
	switch s {
	case "int64":
		return tensor.Int64
	case "bool":
		return tensor.Bool
	default:
		return tensor.Float32
	}
}
