// Quantized-weight kernels: GEMM, CONV, and elementwise paths that
// consume int8/Q4 block-quantized weights directly, dequantizing on the
// fly inside the inner loops. Activations stay float32 throughout —
// this is weight-only quantization, so only the B-side (MatMul) or
// filter-side (Conv) operand is ever packed.
package kernels

import (
	"fmt"

	"repro/internal/tensor"
)

// GemmQuant computes C[m,n] += A[m,k] × dequant(B)[k,n] where B is
// quantized row-wise over n (Rows=k, Cols=n). C is zeroed first, so the
// result matches Gemm on the dequantized operand up to float rounding.
//
// Int8 runs a fused ikj schedule with the per-row scale hoisted out of
// the inner loop; the 4-bit formats run a pkj schedule that dequantizes
// each B row exactly once into a scratch row shared across all m output
// rows, amortizing the nibble unpacking.
func GemmQuant(bq *tensor.QuantData, a []float32, m, k, n int64, c []float32) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	switch bq.Format {
	case tensor.Int8:
		for i := int64(0); i < m; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for p := int64(0); p < k; p++ {
				avs := ai[p] * bq.Scales[p]
				if avs == 0 {
					continue
				}
				bp := bq.Data[p*n : (p+1)*n]
				for j := int64(0); j < n; j++ {
					ci[j] += avs * float32(int8(bp[j]))
				}
			}
		}
	default:
		row := make([]float32, n)
		for p := int64(0); p < k; p++ {
			bq.DequantRow(p, row)
			for i := int64(0); i < m; i++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				ci := c[i*n : (i+1)*n]
				for j := int64(0); j < n; j++ {
					ci[j] += av * row[j]
				}
			}
		}
	}
}

// GemmQuantLHS computes C[rows,n] = dequant(W)[rowLo:rowHi,k] × B[k,n]
// for a weight matrix quantized row-wise over k (Rows covers the output
// channels, Cols=k) — the conv im2col orientation, where the packed
// operand is the left matrix. Each weight row is dequantized once into
// a scratch row and then streamed against B, so unpacking cost is
// amortized over the n output columns.
func GemmQuantLHS(wq *tensor.QuantData, rowLo, rowHi int64, b []float32, k, n int64, c []float32) {
	row := make([]float32, k)
	for i := rowLo; i < rowHi; i++ {
		wq.DequantRow(i, row)
		ci := c[(i-rowLo)*n : (i-rowLo+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := int64(0); p < k; p++ {
			wv := row[p]
			if wv == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := int64(0); j < n; j++ {
				ci[j] += wv * bp[j]
			}
		}
	}
}

// matmulQuant is the MatMul path for a quantized weight operand: B must
// be a rank-2 weight [k, n] packed with Rows=k (the reduction dim), and
// A batches broadcast over it.
func matmulQuant(a, b *tensor.Tensor, m, k, nn int64, out *tensor.Tensor, threads int) error {
	if b.Rank() != 2 || b.Q.Rows != k || b.Q.Cols != nn {
		return fmt.Errorf("MatMul: quantized B grid %dx%d does not match [%d,%d]",
			b.Q.Rows, b.Q.Cols, k, nn)
	}
	nBatch := out.Len() / (m * nn)
	if int64(threads) > 1 && nBatch > 1 {
		ParallelForGrain(threads, nBatch, 1, func(lo, hi int64) {
			for bi := lo; bi < hi; bi++ {
				GemmQuant(b.Q, a.F[bi*m*k:(bi+1)*m*k], m, k, nn, out.F[bi*m*nn:(bi+1)*m*nn])
			}
		})
		return nil
	}
	for bi := int64(0); bi < nBatch; bi++ {
		if int64(threads) > 1 && m > 1 {
			// Stripe output rows: each stripe reads the shared packed B.
			aOff, oOff := bi*m*k, bi*m*nn
			ParallelForGrain(threads, m, rowGrain(k*nn), func(iLo, iHi int64) {
				GemmQuant(b.Q, a.F[aOff+iLo*k:aOff+iHi*k], iHi-iLo, k, nn,
					out.F[oOff+iLo*nn:oOff+iHi*nn])
			})
			continue
		}
		GemmQuant(b.Q, a.F[bi*m*k:(bi+1)*m*k], m, k, nn, out.F[bi*m*nn:(bi+1)*m*nn])
	}
	return nil
}

// convIm2colQuant mirrors convIm2col with the weight matrix packed
// row-wise over cinPerGroup*kh*kw (Rows=cout).
func convIm2colQuant(x, w *tensor.Tensor, out *tensor.Tensor, a conv2dArgs, threads int) error {
	coutPerGroup := a.cout / a.group
	k := a.cinPerGroup * a.kh * a.kw
	if w.Q.Rows != a.cout || w.Q.Cols != k {
		return fmt.Errorf("Conv: quantized weight grid %dx%d does not match [%d,%d]",
			w.Q.Rows, w.Q.Cols, a.cout, k)
	}
	cols := a.outH * a.outW
	patch := make([]float32, k*cols)
	for b := int64(0); b < a.n; b++ {
		for g := int64(0); g < a.group; g++ {
			im2colPatch(x, patch, a, b, g, cols)
			outMat := out.F[((b*a.cout)+g*coutPerGroup)*cols : ((b*a.cout)+(g+1)*coutPerGroup)*cols]
			rowBase := g * coutPerGroup
			if threads > 1 && coutPerGroup > 1 {
				ParallelForGrain(threads, coutPerGroup, rowGrain(k*cols), func(lo, hi int64) {
					GemmQuantLHS(w.Q, rowBase+lo, rowBase+hi, patch, k, cols,
						outMat[lo*cols:hi*cols])
				})
			} else {
				GemmQuantLHS(w.Q, rowBase, rowBase+coutPerGroup, patch, k, cols, outMat)
			}
		}
	}
	return nil
}

// binQuantRowwise applies a float binary op where y is quantized and
// shapes match exactly: each storage row of y is dequantized once into
// a scratch row, keeping the live overhead at O(Cols) instead of a full
// float copy of the operand.
func binQuantRowwise(op func(a, b float32) float32, x *tensor.Tensor, y *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(tensor.Float32, x.Shape...)
	q := y.Q
	row := make([]float32, q.Cols)
	for r := int64(0); r < q.Rows; r++ {
		q.DequantRow(r, row)
		base := r * q.Cols
		for j := int64(0); j < q.Cols; j++ {
			out.F[base+j] = op(x.F[base+j], row[j])
		}
	}
	return out
}

// dequantIfNeeded unpacks a quantized operand for kernels without a
// fused path. Activations are never quantized, so this only triggers
// for weight tensors reaching a non-GEMM/CONV op.
func dequantIfNeeded(t *tensor.Tensor) *tensor.Tensor {
	if t != nil && t.DType.IsQuantized() {
		return t.Dequantize()
	}
	return t
}
