package kernels

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

var quantFormats = []tensor.DType{tensor.Int8, tensor.Q4_0, tensor.Q4_1}

// The quantized kernels must agree with the float kernel run on the
// dequantized operand — same values, only accumulation order differs.
func TestGemmQuantMatchesDequantGemm(t *testing.T) {
	rng := tensor.NewRNG(11)
	shapes := []struct{ m, k, n int64 }{{1, 64, 33}, {8, 96, 40}, {17, 33, 5}}
	for _, format := range quantFormats {
		for _, s := range shapes {
			a := tensor.RandomFloats(rng, 1, s.m, s.k)
			b := tensor.RandomFloats(rng, 1, s.k, s.n)
			bq, err := tensor.Quantize(b, format, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float32, s.m*s.n)
			Gemm(GemmNaive, a.F, bq.Dequantize().F, s.m, s.k, s.n, want)
			got := make([]float32, s.m*s.n)
			GemmQuant(bq.Q, a.F, s.m, s.k, s.n, got)
			for i := range got {
				if math.Abs(float64(got[i]-want[i])) > 1e-3 {
					t.Fatalf("%s %dx%dx%d elem %d: got %g want %g", format, s.m, s.k, s.n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmQuantLHSMatchesDequant(t *testing.T) {
	rng := tensor.NewRNG(12)
	m, k, n := int64(12), int64(50), int64(21)
	w := tensor.RandomFloats(rng, 1, m, k)
	b := tensor.RandomFloats(rng, 1, k, n)
	for _, format := range quantFormats {
		wq, err := tensor.Quantize(w, format, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float32, m*n)
		Gemm(GemmNaive, wq.Dequantize().F, b.F, m, k, n, want)
		got := make([]float32, m*n)
		GemmQuantLHS(wq.Q, 0, m, b.F, k, n, got)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("%s elem %d: got %g want %g", format, i, got[i], want[i])
			}
		}
		// Stripe subset: rows [3,7) must match the same slab.
		sub := make([]float32, 4*n)
		GemmQuantLHS(wq.Q, 3, 7, b.F, k, n, sub)
		for i := range sub {
			if math.Abs(float64(sub[i]-want[3*n+int64(i)])) > 1e-3 {
				t.Fatalf("%s stripe elem %d mismatch", format, i)
			}
		}
	}
}

func runOp(t *testing.T, op string, attrs map[string]graph.AttrValue, threads int, in ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	n := &graph.Node{Name: "t", OpType: op, Attrs: attrs}
	var out []*tensor.Tensor
	var err error
	if threads > 1 {
		out, err = RunWithBudget(n, in, threads)
	} else {
		out, err = Run(n, in)
	}
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return out[0]
}

func TestMatMulKernelQuantized(t *testing.T) {
	rng := tensor.NewRNG(13)
	a := tensor.RandomFloats(rng, 1, 2, 9, 48)
	b := tensor.RandomFloats(rng, 1, 48, 37)
	for _, format := range quantFormats {
		bq, err := tensor.Quantize(b, format, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := runOp(t, "MatMul", nil, 1, a, bq.Dequantize())
		for _, threads := range []int{1, 4} {
			got := runOp(t, "MatMul", nil, threads, a, bq)
			if !tensor.AllClose(got, want, 1e-3) {
				t.Fatalf("%s threads=%d: quantized MatMul diverges from dequantized reference", format, threads)
			}
		}
	}
}

func TestConvKernelQuantized(t *testing.T) {
	rng := tensor.NewRNG(14)
	x := tensor.RandomFloats(rng, 1, 1, 8, 9, 9)
	w := tensor.RandomFloats(rng, 1, 6, 8, 3, 3)
	bias := tensor.RandomFloats(rng, 1, 6)
	attrs := map[string]graph.AttrValue{"pads": graph.IntsAttr(1, 1, 1, 1)}
	for _, format := range quantFormats {
		wq, err := tensor.Quantize(w, format, 8*3*3)
		if err != nil {
			t.Fatal(err)
		}
		want := runOp(t, "Conv", attrs, 1, x, wq.Dequantize(), bias)
		for _, threads := range []int{1, 3} {
			got := runOp(t, "Conv", attrs, threads, x, wq, bias)
			if !tensor.AllClose(got, want, 1e-3) {
				t.Fatalf("%s threads=%d: quantized Conv diverges from dequantized reference", format, threads)
			}
		}
	}
}

func TestConvKernelQuantizedDirectVariant(t *testing.T) {
	rng := tensor.NewRNG(15)
	x := tensor.RandomFloats(rng, 1, 1, 2, 7, 7)
	w := tensor.RandomFloats(rng, 1, 4, 2, 1, 1) // cin*kh*kw < 32 → direct
	wq, err := tensor.Quantize(w, tensor.Int8, 2)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]graph.AttrValue{"auto_variant": graph.IntAttr(1)}
	want := runOp(t, "Conv", attrs, 1, x, wq.Dequantize())
	got := runOp(t, "Conv", attrs, 1, x, wq)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatal("direct-variant quantized Conv diverges")
	}
}

func TestElementwiseQuantized(t *testing.T) {
	rng := tensor.NewRNG(16)
	x := tensor.RandomFloats(rng, 1, 5, 40)
	y := tensor.RandomFloats(rng, 1, 5, 40)
	for _, op := range []string{"Add", "Mul", "Sub"} {
		for _, format := range quantFormats {
			yq, err := tensor.Quantize(y, format, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := runOp(t, op, nil, 1, x, yq.Dequantize())
			if got := runOp(t, op, nil, 1, x, yq); !tensor.AllClose(got, want, 1e-4) {
				t.Fatalf("%s(%s) fused row-wise path diverges", op, format)
			}
			if got := runOp(t, op, nil, 1, yq, x); !tensor.AllClose(got, runOp(t, op, nil, 1, yq.Dequantize(), x), 1e-4) {
				t.Fatalf("%s(%s) quantized-LHS path diverges", op, format)
			}
		}
	}
	// Broadcast shapes fall back to unpacking.
	row := tensor.RandomFloats(rng, 1, 40)
	rq, err := tensor.Quantize(row, tensor.Int8, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := runOp(t, "Add", nil, 1, x, rq.Dequantize())
	if got := runOp(t, "Add", nil, 1, x, rq); !tensor.AllClose(got, want, 1e-4) {
		t.Fatal("broadcast quantized Add diverges")
	}
}

// Benchmarks: the f32 baselines vs dequant-on-the-fly quantized loops
// per MVC shape class. The quantized win comes from streaming 4-8x
// fewer weight bytes on memory-bound shapes (skinny/GEMV-like), which
// is exactly the regime MVC routes to the packed variants.
func benchGemm(b *testing.B, m, k, n int64, format tensor.DType) {
	rng := tensor.NewRNG(21)
	a := tensor.RandomFloats(rng, 1, m, k)
	w := tensor.RandomFloats(rng, 1, k, n)
	c := make([]float32, m*n)
	if format == tensor.Float32 {
		variant := SelectGemmVariant(m, k, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Gemm(variant, a.F, w.F, m, k, n, c)
		}
		return
	}
	wq, err := tensor.Quantize(w, format, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmQuant(wq.Q, a.F, m, k, n, c)
	}
}

func BenchmarkGemmSkinnyF32(b *testing.B)  { benchGemm(b, 4, 2048, 2048, tensor.Float32) }
func BenchmarkGemmSkinnyInt8(b *testing.B) { benchGemm(b, 4, 2048, 2048, tensor.Int8) }
func BenchmarkGemmSkinnyQ40(b *testing.B)  { benchGemm(b, 4, 2048, 2048, tensor.Q4_0) }
func BenchmarkGemmSkinnyQ41(b *testing.B)  { benchGemm(b, 4, 2048, 2048, tensor.Q4_1) }

func BenchmarkGemmRegularF32(b *testing.B)  { benchGemm(b, 256, 256, 256, tensor.Float32) }
func BenchmarkGemmRegularInt8(b *testing.B) { benchGemm(b, 256, 256, 256, tensor.Int8) }
func BenchmarkGemmRegularQ40(b *testing.B)  { benchGemm(b, 256, 256, 256, tensor.Q4_0) }

func BenchmarkGemmFatF32(b *testing.B)  { benchGemm(b, 1024, 512, 64, tensor.Float32) }
func BenchmarkGemmFatInt8(b *testing.B) { benchGemm(b, 1024, 512, 64, tensor.Int8) }

func benchConv(b *testing.B, format tensor.DType) {
	rng := tensor.NewRNG(22)
	x := tensor.RandomFloats(rng, 1, 1, 64, 28, 28)
	w := tensor.RandomFloats(rng, 1, 64, 64, 3, 3)
	node := &graph.Node{Name: "c", OpType: "Conv",
		Attrs: map[string]graph.AttrValue{"pads": graph.IntsAttr(1, 1, 1, 1)}}
	win := w
	if format != tensor.Float32 {
		var err error
		win, err = tensor.Quantize(w, format, 64*3*3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(node, []*tensor.Tensor{x, win}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvF32(b *testing.B)  { benchConv(b, tensor.Float32) }
func BenchmarkConvInt8(b *testing.B) { benchConv(b, tensor.Int8) }
func BenchmarkConvQ40(b *testing.B)  { benchConv(b, tensor.Q4_0) }

// The fused embedding-lookup path: Gather on a row-quantized table must
// dequantize exactly the selected rows and match Gather on the
// dequantized table, including negative and repeated indices.
func TestGatherQuantizedTable(t *testing.T) {
	rng := tensor.NewRNG(13)
	table := tensor.RandomFloats(rng, 1, 40, 64)
	idx := tensor.FromInts([]int64{5}, []int64{0, 39, 7, -1, 7})
	for _, format := range quantFormats {
		tq, err := tensor.Quantize(table, format, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := run1(t, "Gather", nil, tq.Dequantize(), idx)
		got := run1(t, "Gather", nil, tq, idx)
		if got.DType != tensor.Float32 {
			t.Fatalf("%s: gather output dtype %v", format, got.DType)
		}
		if !tensor.AllClose(got, want, 0) {
			t.Fatalf("%s: quantized gather differs from dequantized gather", format)
		}
	}
	// Out-of-range index must fail identically on the quantized path.
	tq, err := tensor.Quantize(table, tensor.Int8, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.FromInts([]int64{1}, []int64{40})
	if _, err := Run(mkNode("Gather", nil, 1), []*tensor.Tensor{tq, bad}); err == nil {
		t.Fatal("out-of-range index on quantized table succeeded")
	}
}

// A quantized table gathered on a non-zero axis takes the dequantize
// fallback and still matches the float result.
func TestGatherQuantizedNonZeroAxis(t *testing.T) {
	rng := tensor.NewRNG(14)
	table := tensor.RandomFloats(rng, 1, 8, 32)
	tq, err := tensor.Quantize(table, tensor.Int8, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx := tensor.FromInts([]int64{2}, []int64{1, 30})
	attrs := map[string]graph.AttrValue{"axis": graph.IntAttr(1)}
	want := run1(t, "Gather", attrs, tq.Dequantize(), idx)
	got := run1(t, "Gather", attrs, tq, idx)
	if !tensor.AllClose(got, want, 0) {
		t.Fatal("non-zero-axis gather on quantized table differs")
	}
}
