package kernels

import (
	"sync"

	"repro/internal/tensor"
)

// GemmParallel partitions the output rows of C = A×B across `threads`
// goroutines, each running the chosen single-threaded schedule on its
// row stripe. This realizes the thread-count dimension of the MVC
// auto-tuner's search space (§4.4.2: "the more effective exploitation of
// parallelism available in the hardware").
func GemmParallel(variant GemmVariant, threads int, a, b []float32, m, k, n int64, c []float32) {
	if threads <= 1 || m < int64(threads) {
		Gemm(variant, a, b, m, k, n, c)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + int64(threads) - 1) / int64(threads)
	for t := 0; t < threads; t++ {
		lo := int64(t) * chunk
		if lo >= m {
			break
		}
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			Gemm(variant, a[lo*k:hi*k], b, hi-lo, k, n, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}

// ConvParallelDirect stripes the direct convolution's output channels
// across goroutines (each stripe reads the shared input independently).
// Grouped convolutions fall back to the single-threaded kernel.
func ConvParallelDirect(x, w, out *tensor.Tensor, a conv2dArgs, threads int) {
	if threads <= 1 || a.cout < int64(threads) || a.group != 1 {
		convDirect(x, w, out, a)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.cout + int64(threads) - 1) / int64(threads)
	for t := 0; t < threads; t++ {
		lo := int64(t) * chunk
		if lo >= a.cout {
			break
		}
		hi := lo + chunk
		if hi > a.cout {
			hi = a.cout
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			convDirectStripe(x, w, out, a, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
