package kernels

import (
	"sync"

	"repro/internal/tensor"
)

// GemmParallel partitions the output rows of C = A×B across `threads`
// goroutines, each running the chosen single-threaded schedule on its
// row stripe. This realizes the thread-count dimension of the MVC
// auto-tuner's search space (§4.4.2: "the more effective exploitation of
// parallelism available in the hardware").
// When m < threads the stripe count is clamped to m (m=3, threads=8 uses
// 3 goroutines) rather than collapsing to a single thread.
func GemmParallel(variant GemmVariant, threads int, a, b []float32, m, k, n int64, c []float32) {
	stripes := int64(threads)
	if stripes > m {
		stripes = m
	}
	if stripes <= 1 {
		Gemm(variant, a, b, m, k, n, c)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + stripes - 1) / stripes
	for lo := int64(0); lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			Gemm(variant, a[lo*k:hi*k], b, hi-lo, k, n, c[lo*n:hi*n])
		}(lo, hi)
	}
	wg.Wait()
}

// ConvParallelDirect stripes the direct convolution's output channels
// across goroutines (each stripe reads the shared input independently).
// Grouped convolutions fall back to the single-threaded kernel.
// As with GemmParallel, the stripe count is clamped to cout instead of
// collapsing to one thread when cout < threads.
func ConvParallelDirect(x, w, out *tensor.Tensor, a conv2dArgs, threads int) {
	stripes := int64(threads)
	if stripes > a.cout {
		stripes = a.cout
	}
	if stripes <= 1 || a.group != 1 {
		convDirect(x, w, out, a)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.cout + stripes - 1) / stripes
	for lo := int64(0); lo < a.cout; lo += chunk {
		hi := lo + chunk
		if hi > a.cout {
			hi = a.cout
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			convDirectStripe(x, w, out, a, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
