package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func mkNode(op string, attrs map[string]graph.AttrValue, nOut int) *graph.Node {
	if attrs == nil {
		attrs = map[string]graph.AttrValue{}
	}
	outs := make([]string, nOut)
	for i := range outs {
		outs[i] = "o"
	}
	return &graph.Node{Name: "k", OpType: op, Outputs: outs, Attrs: attrs}
}

func run1(t *testing.T, op string, attrs map[string]graph.AttrValue, in ...*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := Run(mkNode(op, attrs, 1), in)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return out[0]
}

func TestAddBroadcast(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	y := tensor.FromFloats([]int64{3}, []float32{10, 20, 30})
	got := run1(t, "Add", nil, x, y)
	want := tensor.FromFloats([]int64{2, 3}, []float32{11, 22, 33, 14, 25, 36})
	if !tensor.AllClose(got, want, 1e-6) {
		t.Errorf("got %v", got.F)
	}
}

func TestIntArithmetic(t *testing.T) {
	x := tensor.FromInts([]int64{3}, []int64{7, -7, 9})
	y := tensor.FromInts([]int64{3}, []int64{2, 2, 3})
	div := run1(t, "Div", nil, x, y)
	if div.I[0] != 3 || div.I[1] != -4 || div.I[2] != 3 {
		t.Errorf("floor div = %v", div.I)
	}
	mod := run1(t, "Mod", nil, x, y)
	if mod.I[0] != 1 || mod.I[1] != 1 {
		t.Errorf("mod = %v", mod.I)
	}
}

func TestActivations(t *testing.T) {
	x := tensor.FromFloats([]int64{3}, []float32{-1, 0, 2})
	relu := run1(t, "Relu", nil, x)
	if relu.F[0] != 0 || relu.F[2] != 2 {
		t.Errorf("relu = %v", relu.F)
	}
	sig := run1(t, "Sigmoid", nil, x)
	if math.Abs(float64(sig.F[1])-0.5) > 1e-6 {
		t.Errorf("sigmoid(0) = %f", sig.F[1])
	}
	lr := run1(t, "LeakyRelu", map[string]graph.AttrValue{"alpha": graph.FloatAttr(0.1)}, x)
	if math.Abs(float64(lr.F[0])+0.1) > 1e-6 {
		t.Errorf("leakyrelu = %v", lr.F)
	}
	gelu := run1(t, "Gelu", nil, tensor.FromFloats([]int64{1}, []float32{0}))
	if gelu.F[0] != 0 {
		t.Errorf("gelu(0) = %f", gelu.F[0])
	}
}

func TestCompareAndWhere(t *testing.T) {
	x := tensor.FromFloats([]int64{3}, []float32{1, 5, 3})
	y := tensor.FromFloats([]int64{3}, []float32{2, 2, 3})
	gt := run1(t, "Greater", nil, x, y)
	if gt.B[0] || !gt.B[1] || gt.B[2] {
		t.Errorf("greater = %v", gt.B)
	}
	w := run1(t, "Where", nil, gt, x, y)
	if w.F[0] != 2 || w.F[1] != 5 || w.F[2] != 3 {
		t.Errorf("where = %v", w.F)
	}
}

func TestCast(t *testing.T) {
	x := tensor.FromFloats([]int64{2}, []float32{1.7, 0})
	i := run1(t, "Cast", map[string]graph.AttrValue{"to": graph.StringAttr("int64")}, x)
	if i.I[0] != 1 || i.I[1] != 0 {
		t.Errorf("cast = %v", i.I)
	}
	b := run1(t, "Cast", map[string]graph.AttrValue{"to": graph.StringAttr("bool")}, x)
	if !b.B[0] || b.B[1] {
		t.Errorf("cast bool = %v", b.B)
	}
}

// All GEMM variants must agree with the naive implementation.
func TestGemmVariantsAgree(t *testing.T) {
	rng := tensor.NewRNG(5)
	m, k, n := int64(17), int64(23), int64(9)
	a := tensor.RandomFloats(rng, 1, m, k)
	b := tensor.RandomFloats(rng, 1, k, n)
	ref := make([]float32, m*n)
	Gemm(GemmNaive, a.F, b.F, m, k, n, ref)
	for _, v := range GemmVariants()[1:] {
		c := make([]float32, m*n)
		Gemm(v, a.F, b.F, m, k, n, c)
		for i := range ref {
			if math.Abs(float64(ref[i]-c[i])) > 1e-3 {
				t.Fatalf("variant %v disagrees at %d: %f vs %f", v, i, c[i], ref[i])
			}
		}
	}
}

func TestSelectGemmVariant(t *testing.T) {
	if SelectGemmVariant(4, 4, 4) != GemmTiny {
		t.Error("tiny")
	}
	if SelectGemmVariant(1024, 64, 8) != GemmRowMajorFat {
		t.Error("fat")
	}
	if SelectGemmVariant(8, 64, 1024) != GemmColMajorSkinny {
		t.Error("skinny")
	}
	if SelectGemmVariant(256, 256, 256) != GemmTiledRegular {
		t.Error("regular")
	}
}

func TestMatMulBatchBroadcast(t *testing.T) {
	a := tensor.FromFloats([]int64{2, 2, 3}, []float32{1, 0, 0, 0, 1, 0, 2, 0, 0, 0, 2, 0})
	b := tensor.FromFloats([]int64{3, 2}, []float32{1, 2, 3, 4, 5, 6})
	got := run1(t, "MatMul", nil, a, b)
	if !tensor.SameShape(got.Shape, []int64{2, 2, 2}) {
		t.Fatalf("shape %v", got.Shape)
	}
	// first batch picks rows of b; second batch doubles them
	if got.F[0] != 1 || got.F[1] != 2 || got.F[2] != 3 || got.F[3] != 4 {
		t.Errorf("batch0 = %v", got.F[:4])
	}
	if got.F[4] != 2 || got.F[7] != 8 {
		t.Errorf("batch1 = %v", got.F[4:])
	}
}

func TestGemmTransposeAndBias(t *testing.T) {
	a := tensor.FromFloats([]int64{3, 2}, []float32{1, 4, 2, 5, 3, 6}) // transA -> [2,3]
	b := tensor.FromFloats([]int64{3, 4}, []float32{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0})
	c := tensor.FromFloats([]int64{4}, []float32{10, 10, 10, 10})
	got := run1(t, "Gemm", map[string]graph.AttrValue{"transA": graph.IntAttr(1)}, a, b, c)
	if !tensor.SameShape(got.Shape, []int64{2, 4}) {
		t.Fatalf("shape %v", got.Shape)
	}
	if got.F[0] != 11 || got.F[1] != 12 || got.F[2] != 13 || got.F[3] != 10 {
		t.Errorf("row0 = %v", got.F[:4])
	}
}

// Conv direct and im2col must agree.
func TestConvVariantsAgree(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := tensor.RandomFloats(rng, 1, 1, 3, 8, 8)
	w := tensor.RandomFloats(rng, 1, 4, 3, 3, 3)
	attrs := map[string]graph.AttrValue{
		"pads": graph.IntsAttr(1, 1, 1, 1), "strides": graph.IntsAttr(2, 2),
	}
	direct := run1(t, "Conv", withAttr(attrs, "conv_variant", graph.IntAttr(int64(ConvDirect))), x, w)
	im2col := run1(t, "Conv", withAttr(attrs, "conv_variant", graph.IntAttr(int64(ConvIm2col))), x, w)
	if !tensor.SameShape(direct.Shape, []int64{1, 4, 4, 4}) {
		t.Fatalf("conv shape %v", direct.Shape)
	}
	if !tensor.AllClose(direct, im2col, 1e-3) {
		t.Error("conv variants disagree")
	}
}

func withAttr(base map[string]graph.AttrValue, k string, v graph.AttrValue) map[string]graph.AttrValue {
	out := map[string]graph.AttrValue{k: v}
	for kk, vv := range base {
		out[kk] = vv
	}
	return out
}

func TestGroupedConv(t *testing.T) {
	// Depthwise: group == cin, each filter sees one channel.
	x := tensor.FromFloats([]int64{1, 2, 2, 2}, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	w := tensor.FromFloats([]int64{2, 1, 1, 1}, []float32{2, 3})
	got := run1(t, "Conv", map[string]graph.AttrValue{"group": graph.IntAttr(2)}, x, w)
	want := []float32{2, 4, 6, 8, 30, 60, 90, 120}
	for i, v := range want {
		if got.F[i] != v {
			t.Fatalf("depthwise = %v", got.F)
		}
	}
}

func TestConvBias(t *testing.T) {
	x := tensor.FromFloats([]int64{1, 1, 2, 2}, []float32{1, 1, 1, 1})
	w := tensor.FromFloats([]int64{1, 1, 1, 1}, []float32{1})
	b := tensor.FromFloats([]int64{1}, []float32{5})
	got := run1(t, "Conv", nil, x, w, b)
	if got.F[0] != 6 {
		t.Errorf("bias = %v", got.F)
	}
}

func TestPooling(t *testing.T) {
	x := tensor.FromFloats([]int64{1, 1, 2, 2}, []float32{1, 2, 3, 4})
	mx := run1(t, "MaxPool", map[string]graph.AttrValue{
		"kernel_shape": graph.IntsAttr(2, 2), "strides": graph.IntsAttr(2, 2)}, x)
	if mx.F[0] != 4 {
		t.Errorf("maxpool = %v", mx.F)
	}
	av := run1(t, "AveragePool", map[string]graph.AttrValue{
		"kernel_shape": graph.IntsAttr(2, 2), "strides": graph.IntsAttr(2, 2)}, x)
	if av.F[0] != 2.5 {
		t.Errorf("avgpool = %v", av.F)
	}
	gl := run1(t, "GlobalAveragePool", nil, x)
	if !tensor.SameShape(gl.Shape, []int64{1, 1, 1, 1}) || gl.F[0] != 2.5 {
		t.Errorf("global = %v %v", gl.Shape, gl.F)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(11)
	x := tensor.RandomFloats(rng, 3, 4, 7)
	s := run1(t, "Softmax", nil, x)
	for r := 0; r < 4; r++ {
		var sum float64
		for c := 0; c < 7; c++ {
			sum += float64(s.F[r*7+c])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %f", r, sum)
		}
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	rng := tensor.NewRNG(13)
	x := tensor.RandomFloats(rng, 5, 3, 16)
	out := run1(t, "LayerNormalization", nil, x)
	for r := 0; r < 3; r++ {
		var mean, variance float64
		for c := 0; c < 16; c++ {
			mean += float64(out.F[r*16+c])
		}
		mean /= 16
		for c := 0; c < 16; c++ {
			d := float64(out.F[r*16+c]) - mean
			variance += d * d
		}
		variance /= 16
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Errorf("row %d: mean=%f var=%f", r, mean, variance)
		}
	}
}

func TestBatchNorm(t *testing.T) {
	x := tensor.FromFloats([]int64{1, 2, 1, 2}, []float32{1, 2, 3, 4})
	scale := tensor.FromFloats([]int64{2}, []float32{1, 2})
	bias := tensor.FromFloats([]int64{2}, []float32{0, 1})
	mean := tensor.FromFloats([]int64{2}, []float32{1.5, 3.5})
	va := tensor.FromFloats([]int64{2}, []float32{1, 1})
	out := run1(t, "BatchNormalization", nil, x, scale, bias, mean, va)
	if math.Abs(float64(out.F[0])+0.5) > 1e-3 || math.Abs(float64(out.F[2])+0.0) > 1.1 {
		t.Errorf("bn = %v", out.F)
	}
}

func TestMovementOps(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 3}, []float32{1, 2, 3, 4, 5, 6})

	shp := run1(t, "Shape", nil, x)
	if shp.I[0] != 2 || shp.I[1] != 3 {
		t.Errorf("shape = %v", shp.I)
	}

	rs := run1(t, "Reshape", nil, x, tensor.FromInts([]int64{2}, []int64{3, -1}))
	if !tensor.SameShape(rs.Shape, []int64{3, 2}) {
		t.Errorf("reshape = %v", rs.Shape)
	}

	tp := run1(t, "Transpose", nil, x)
	if !tensor.SameShape(tp.Shape, []int64{3, 2}) || tp.F[1] != 4 {
		t.Errorf("transpose = %v %v", tp.Shape, tp.F)
	}

	cc := run1(t, "Concat", map[string]graph.AttrValue{"axis": graph.IntAttr(1)}, x, x)
	if !tensor.SameShape(cc.Shape, []int64{2, 6}) || cc.F[3] != 1 {
		t.Errorf("concat = %v %v", cc.Shape, cc.F)
	}

	g := run1(t, "Gather", nil, x, tensor.FromInts([]int64{1}, []int64{1}))
	if !tensor.SameShape(g.Shape, []int64{1, 3}) || g.F[0] != 4 {
		t.Errorf("gather = %v %v", g.Shape, g.F)
	}

	sl := run1(t, "Slice", nil, x,
		tensor.FromInts([]int64{1}, []int64{1}),
		tensor.FromInts([]int64{1}, []int64{3}),
		tensor.FromInts([]int64{1}, []int64{1}))
	if !tensor.SameShape(sl.Shape, []int64{2, 2}) || sl.F[0] != 2 {
		t.Errorf("slice = %v %v", sl.Shape, sl.F)
	}

	fl := run1(t, "Flatten", nil, tensor.New(tensor.Float32, 2, 3, 4))
	if !tensor.SameShape(fl.Shape, []int64{2, 12}) {
		t.Errorf("flatten = %v", fl.Shape)
	}

	ex := run1(t, "Expand", nil, tensor.FromFloats([]int64{1, 3}, []float32{1, 2, 3}),
		tensor.FromInts([]int64{2}, []int64{2, 3}))
	if !tensor.SameShape(ex.Shape, []int64{2, 3}) || ex.F[3] != 1 {
		t.Errorf("expand = %v %v", ex.Shape, ex.F)
	}
}

func TestSplitKernel(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 4}, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	n := &graph.Node{Name: "s", OpType: "Split", Outputs: []string{"a", "b"},
		Attrs: map[string]graph.AttrValue{"axis": graph.IntAttr(1)}}
	out, err := Run(n, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !tensor.SameShape(out[0].Shape, []int64{2, 2}) {
		t.Fatalf("split shapes: %v", out[0].Shape)
	}
	if out[1].F[0] != 3 || out[1].F[2] != 7 {
		t.Errorf("split[1] = %v", out[1].F)
	}
}

func TestReduceOps(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	mean := run1(t, "ReduceMean", map[string]graph.AttrValue{"axes": graph.IntsAttr(1)}, x)
	if !tensor.SameShape(mean.Shape, []int64{2, 1}) || mean.F[0] != 2 || mean.F[1] != 5 {
		t.Errorf("mean = %v %v", mean.Shape, mean.F)
	}
	sum := run1(t, "ReduceSum", map[string]graph.AttrValue{"axes": graph.IntsAttr(0), "keepdims": graph.IntAttr(0)}, x)
	if !tensor.SameShape(sum.Shape, []int64{3}) || sum.F[0] != 5 {
		t.Errorf("sum = %v %v", sum.Shape, sum.F)
	}
	mx := run1(t, "ReduceMax", nil, x)
	if mx.F[0] != 6 {
		t.Errorf("max = %v", mx.F)
	}
}

func TestArgMax(t *testing.T) {
	x := tensor.FromFloats([]int64{2, 3}, []float32{1, 9, 3, 7, 5, 6})
	am := run1(t, "ArgMax", map[string]graph.AttrValue{"axis": graph.IntAttr(1), "keepdims": graph.IntAttr(0)}, x)
	if am.I[0] != 1 || am.I[1] != 0 {
		t.Errorf("argmax = %v", am.I)
	}
}

func TestTopK(t *testing.T) {
	x := tensor.FromFloats([]int64{1, 5}, []float32{3, 1, 4, 1, 5})
	n := &graph.Node{Name: "t", OpType: "TopK", Outputs: []string{"v", "i"},
		Attrs: map[string]graph.AttrValue{}}
	out, err := Run(n, []*tensor.Tensor{x, tensor.FromInts([]int64{1}, []int64{2})})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F[0] != 5 || out[0].F[1] != 4 {
		t.Errorf("topk vals = %v", out[0].F)
	}
	if out[1].I[0] != 4 || out[1].I[1] != 2 {
		t.Errorf("topk idx = %v", out[1].I)
	}
}

func TestRangeNonZeroPadTile(t *testing.T) {
	r := run1(t, "Range", nil, tensor.ScalarInt(2), tensor.ScalarInt(8), tensor.ScalarInt(3))
	if r.Len() != 2 || r.I[0] != 2 || r.I[1] != 5 {
		t.Errorf("range = %v", r.I)
	}

	nz := run1(t, "NonZero", nil, tensor.FromFloats([]int64{2, 2}, []float32{1, 0, 0, 2}))
	if !tensor.SameShape(nz.Shape, []int64{2, 2}) {
		t.Fatalf("nonzero shape %v", nz.Shape)
	}
	if nz.I[0] != 0 || nz.I[1] != 1 || nz.I[2] != 0 || nz.I[3] != 1 {
		t.Errorf("nonzero = %v", nz.I)
	}

	pd := run1(t, "Pad", map[string]graph.AttrValue{"pads": graph.IntsAttr(0, 1, 0, 1)},
		tensor.FromFloats([]int64{1, 2}, []float32{7, 8}))
	if !tensor.SameShape(pd.Shape, []int64{1, 4}) || pd.F[0] != 0 || pd.F[1] != 7 {
		t.Errorf("pad = %v %v", pd.Shape, pd.F)
	}

	tl := run1(t, "Tile", nil, tensor.FromFloats([]int64{1, 2}, []float32{1, 2}),
		tensor.FromInts([]int64{2}, []int64{2, 2}))
	if !tensor.SameShape(tl.Shape, []int64{2, 4}) || tl.F[5] != 2 {
		t.Errorf("tile = %v %v", tl.Shape, tl.F)
	}
}

func TestResizeNearest(t *testing.T) {
	x := tensor.FromFloats([]int64{1, 1, 2, 2}, []float32{1, 2, 3, 4})
	sizes := tensor.FromInts([]int64{4}, []int64{1, 1, 4, 4})
	out, err := Run(&graph.Node{OpType: "Resize", Outputs: []string{"o"}, Attrs: map[string]graph.AttrValue{}},
		[]*tensor.Tensor{x, nil, nil, sizes})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(out[0].Shape, []int64{1, 1, 4, 4}) {
		t.Fatalf("resize shape %v", out[0].Shape)
	}
	if out[0].F[0] != 1 || out[0].F[3] != 2 || out[0].F[15] != 4 {
		t.Errorf("resize = %v", out[0].F)
	}
}

func TestNMS(t *testing.T) {
	boxes := tensor.FromFloats([]int64{1, 3, 4}, []float32{
		0, 0, 10, 10,
		1, 1, 11, 11, // heavy overlap with first
		20, 20, 30, 30,
	})
	scores := tensor.FromFloats([]int64{1, 1, 3}, []float32{0.9, 0.8, 0.7})
	out, err := Run(&graph.Node{OpType: "NonMaxSuppression", Outputs: []string{"o"}, Attrs: map[string]graph.AttrValue{}},
		[]*tensor.Tensor{boxes, scores})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Shape[0] != 2 {
		t.Fatalf("nms selected %d boxes: %v", out[0].Shape[0], out[0].I)
	}
	if out[0].I[2] != 0 || out[0].I[5] != 2 {
		t.Errorf("nms = %v", out[0].I)
	}
}

func TestOneHot(t *testing.T) {
	idx := tensor.FromInts([]int64{2}, []int64{1, 0})
	out := run1(t, "OneHot", nil, idx, tensor.ScalarInt(3))
	if !tensor.SameShape(out.Shape, []int64{2, 3}) || out.F[1] != 1 || out.F[3] != 1 {
		t.Errorf("onehot = %v %v", out.Shape, out.F)
	}
}

func TestEyeLike(t *testing.T) {
	out := run1(t, "EyeLike", nil, tensor.New(tensor.Float32, 2, 3))
	if out.F[0] != 1 || out.F[4] != 1 || out.F[1] != 0 {
		t.Errorf("eyelike = %v", out.F)
	}
}

func TestMissingKernel(t *testing.T) {
	if _, err := Run(mkNode("NoSuchOp", nil, 1), nil); err == nil {
		t.Error("expected error")
	}
	if Has("NoSuchOp") || !Has("Conv") {
		t.Error("Has wrong")
	}
}

// Property: Reshape→Reshape back is identity; Transpose twice with the
// same permutation of rank 2 is identity.
func TestQuickReshapeTransposeRoundTrip(t *testing.T) {
	f := func(seed uint64, d0, d1 uint8) bool {
		r, c := int64(d0%4+1), int64(d1%4+1)
		x := tensor.RandomFloats(tensor.NewRNG(seed), 1, r, c)
		rs := run1(t, "Reshape", nil, x, tensor.FromInts([]int64{1}, []int64{-1}))
		back := run1(t, "Reshape", nil, rs, tensor.FromInts([]int64{2}, []int64{r, c}))
		if !tensor.AllClose(x, back, 0) {
			return false
		}
		tp := run1(t, "Transpose", nil, x)
		tp2 := run1(t, "Transpose", nil, tp)
		return tensor.AllClose(x, tp2, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
