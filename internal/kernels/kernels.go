// Package kernels implements real CPU reference kernels for every
// operator in the registry. The executor runs them to produce actual
// tensor values; testing.B benchmarks measure their wall-clock behaviour;
// and the multi-version code generation (MVC) subsystem selects among the
// GEMM/CONV variants in this package.
package kernels

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Kernel executes one operator over concrete inputs, returning freshly
// allocated outputs.
type Kernel func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error)

var kernels = map[string]Kernel{}

// register installs a kernel; duplicates panic at init time.
func register(op string, k Kernel) {
	if _, dup := kernels[op]; dup {
		panic("kernels: duplicate " + op)
	}
	kernels[op] = k
}

// Has reports whether an executable kernel exists for the op type.
func Has(op string) bool {
	_, ok := kernels[op]
	return ok
}

// Run executes the node's kernel.
func Run(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
	k, ok := kernels[n.OpType]
	if !ok {
		return nil, fmt.Errorf("kernels: no kernel for %s", n.OpType)
	}
	out, err := k(n, in)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s(%s): %w", n.OpType, n.Name, err)
	}
	return out, nil
}

// Types lists all op types with kernels, sorted.
func Types() []string {
	out := make([]string, 0, len(kernels))
	for t := range kernels {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func wantInputs(in []*tensor.Tensor, n int, op string) error {
	if len(in) < n {
		return fmt.Errorf("%s: want %d inputs, got %d", op, n, len(in))
	}
	return nil
}
