package kernels

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// rowGrain converts the elementwise parGrain into a row-count grain for
// kernels whose parallel unit is an independent row of `inner` elements.
func rowGrain(inner int64) int64 {
	if inner < 1 {
		inner = 1
	}
	g := parGrain / inner
	if g < 1 {
		g = 1
	}
	return g
}

func softmaxKernel(logMode bool) BudgetedKernel {
	return func(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
		if err := wantInputs(in, 1, n.OpType); err != nil {
			return nil, err
		}
		x := in[0]
		axis := n.AttrInt("axis", -1)
		if axis < 0 {
			axis += int64(x.Rank())
		}
		if int(axis) != x.Rank()-1 {
			return nil, fmt.Errorf("%s: only last-axis supported (axis=%d rank=%d)", n.OpType, axis, x.Rank())
		}
		inner := x.Shape[x.Rank()-1]
		outer := x.Len() / inner
		out := tensor.New(tensor.Float32, x.Shape...)
		softmaxRows := func(oLo, oHi int64) {
			for o := oLo; o < oHi; o++ {
				row := x.F[o*inner : (o+1)*inner]
				dst := out.F[o*inner : (o+1)*inner]
				maxV := float32(math.Inf(-1))
				for _, v := range row {
					if v > maxV {
						maxV = v
					}
				}
				var sum float64
				for i, v := range row {
					e := math.Exp(float64(v - maxV))
					dst[i] = float32(e)
					sum += e
				}
				if logMode {
					ls := float32(math.Log(sum))
					for i, v := range row {
						dst[i] = v - maxV - ls
					}
				} else {
					inv := float32(1 / sum)
					for i := range dst {
						dst[i] *= inv
					}
				}
			}
		}
		ParallelForGrain(threads, outer, rowGrain(inner), softmaxRows)
		return []*tensor.Tensor{out}, nil
	}
}

// layerNormKernel normalizes over the trailing axes starting at `axis`
// (default -1) with optional scale and bias inputs. Rows are normalized
// independently, so the budget stripes the outer dimension.
func layerNormKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "LayerNormalization"); err != nil {
		return nil, err
	}
	x := in[0]
	axis := n.AttrInt("axis", -1)
	if axis < 0 {
		axis += int64(x.Rank())
	}
	eps := float32(n.AttrFloat("epsilon", 1e-5))
	inner := tensor.NumElems(x.Shape[axis:])
	outer := x.Len() / inner
	out := tensor.New(tensor.Float32, x.Shape...)
	var scale, bias *tensor.Tensor
	if len(in) > 1 && in[1] != nil {
		scale = in[1]
	}
	if len(in) > 2 && in[2] != nil {
		bias = in[2]
	}
	ParallelForGrain(threads, outer, rowGrain(inner), func(oLo, oHi int64) {
		for o := oLo; o < oHi; o++ {
			row := x.F[o*inner : (o+1)*inner]
			dst := out.F[o*inner : (o+1)*inner]
			var mean float64
			for _, v := range row {
				mean += float64(v)
			}
			mean /= float64(inner)
			var variance float64
			for _, v := range row {
				d := float64(v) - mean
				variance += d * d
			}
			variance /= float64(inner)
			inv := float32(1 / math.Sqrt(variance+float64(eps)))
			for i, v := range row {
				r := (v - float32(mean)) * inv
				if scale != nil {
					r *= scale.F[int64(i)%scale.Len()]
				}
				if bias != nil {
					r += bias.F[int64(i)%bias.Len()]
				}
				dst[i] = r
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

// batchNormKernel: inference-mode y = scale*(x-mean)/sqrt(var+eps)+bias,
// parameters indexed by channel (dim 1). (batch, channel) planes are
// independent, so the budget stripes the flattened N*C range.
func batchNormKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 5, "BatchNormalization"); err != nil {
		return nil, err
	}
	x, scale, bias, mean, variance := in[0], in[1], in[2], in[3], in[4]
	eps := float32(n.AttrFloat("epsilon", 1e-5))
	if x.Rank() < 2 {
		return nil, fmt.Errorf("BatchNormalization: rank %d", x.Rank())
	}
	C := x.Shape[1]
	plane := tensor.NumElems(x.Shape[2:])
	N := x.Shape[0]
	out := tensor.New(tensor.Float32, x.Shape...)
	ParallelForGrain(threads, N*C, rowGrain(plane), func(lo, hi int64) {
		for bc := lo; bc < hi; bc++ {
			c := bc % C
			inv := float32(1 / math.Sqrt(float64(variance.F[c])+float64(eps)))
			s, bi, m := scale.F[c], bias.F[c], mean.F[c]
			base := bc * plane
			for i := int64(0); i < plane; i++ {
				out.F[base+i] = s*(x.F[base+i]-m)*inv + bi
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

// groupNormKernel normalizes within channel groups. (batch, group)
// spans are independent, so the budget stripes the flattened N*groups
// range.
func groupNormKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	if err := wantInputs(in, 1, "GroupNormalization"); err != nil {
		return nil, err
	}
	x := in[0]
	groups := n.AttrInt("num_groups", 1)
	eps := float32(n.AttrFloat("epsilon", 1e-5))
	if x.Rank() < 2 {
		return nil, fmt.Errorf("GroupNormalization: rank %d", x.Rank())
	}
	N, C := x.Shape[0], x.Shape[1]
	if C%groups != 0 {
		return nil, fmt.Errorf("GroupNormalization: C=%d %% groups=%d", C, groups)
	}
	plane := tensor.NumElems(x.Shape[2:])
	chPerGroup := C / groups
	span := chPerGroup * plane
	out := tensor.New(tensor.Float32, x.Shape...)
	var scale, bias *tensor.Tensor
	if len(in) > 1 && in[1] != nil {
		scale = in[1]
	}
	if len(in) > 2 && in[2] != nil {
		bias = in[2]
	}
	ParallelForGrain(threads, N*groups, rowGrain(span), func(lo, hi int64) {
		for bg := lo; bg < hi; bg++ {
			b, g := bg/groups, bg%groups
			base := b*C*plane + g*span
			var mean float64
			for i := int64(0); i < span; i++ {
				mean += float64(x.F[base+i])
			}
			mean /= float64(span)
			var variance float64
			for i := int64(0); i < span; i++ {
				d := float64(x.F[base+i]) - mean
				variance += d * d
			}
			variance /= float64(span)
			inv := float32(1 / math.Sqrt(variance+float64(eps)))
			for c := int64(0); c < chPerGroup; c++ {
				ch := g*chPerGroup + c
				s, bi := float32(1), float32(0)
				if scale != nil {
					s = scale.F[ch]
				}
				if bias != nil {
					bi = bias.F[ch]
				}
				cbase := base + c*plane
				for i := int64(0); i < plane; i++ {
					out.F[cbase+i] = s*(x.F[cbase+i]-float32(mean))*inv + bi
				}
			}
		}
	})
	return []*tensor.Tensor{out}, nil
}

func instanceNormKernel(n *graph.Node, in []*tensor.Tensor, threads int) ([]*tensor.Tensor, error) {
	// InstanceNorm == GroupNorm with groups == C.
	if err := wantInputs(in, 1, "InstanceNormalization"); err != nil {
		return nil, err
	}
	clone := &graph.Node{Name: n.Name, OpType: "GroupNormalization", Inputs: n.Inputs, Outputs: n.Outputs,
		Attrs: map[string]graph.AttrValue{
			"num_groups": graph.IntAttr(in[0].Shape[1]),
			"epsilon":    graph.FloatAttr(n.AttrFloat("epsilon", 1e-5)),
		}}
	return groupNormKernel(clone, in, threads)
}

// registerNorm installs both the sequential and budgeted registrations
// of a row-parallel normalization kernel.
func registerNorm(op string, k BudgetedKernel) {
	register(op, func(n *graph.Node, in []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return k(n, in, 1)
	})
	registerBudgeted(op, k)
}

func init() {
	registerNorm("Softmax", softmaxKernel(false))
	registerNorm("LogSoftmax", softmaxKernel(true))
	registerNorm("LayerNormalization", layerNormKernel)
	registerNorm("BatchNormalization", batchNormKernel)
	registerNorm("GroupNormalization", groupNormKernel)
	registerNorm("InstanceNormalization", instanceNormKernel)
}
