package staticverify

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/rdp"
	"repro/internal/symbolic"
	"repro/internal/tensor"
)

// seqModel builds a tiny [1, L, 8] MatMul→Relu chain with symbolic L.
func seqModel(t *testing.T) (*graph.Graph, map[string]lattice.Info) {
	t.Helper()
	g := graph.New("m")
	g.AddInput("x", tensor.Float32, lattice.Ranked(
		lattice.FromInt(1), lattice.FromExpr(symbolic.NewSym("L")), lattice.FromInt(8)))
	g.AddInitializer("w", tensor.RandomFloats(tensor.NewRNG(1), 0.1, 8, 8))
	g.Op("MatMul", "mm", []string{"x", "w"}, []string{"h"}, nil)
	g.Op("Relu", "act", []string{"h"}, []string{"y"}, nil)
	g.AddOutput("y")
	res, err := rdp.Analyze(g, nil, rdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Infos
}

func TestLivenessChain(t *testing.T) {
	g, _ := seqModel(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	live, diags := Liveness(g, order)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if iv := live["h"]; iv.Birth != 0 || iv.Death != 1 {
		t.Errorf("h interval = %+v, want [0,1]", iv)
	}
	// Graph output stays live through the final step.
	if iv := live["y"]; iv.Birth != 1 || iv.Death != len(order)-1 {
		t.Errorf("y interval = %+v, want [1,%d]", iv, len(order)-1)
	}
}

func TestLivenessScheduleViolation(t *testing.T) {
	g, _ := seqModel(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the order: Relu consumes h before MatMul produces it.
	rev := []*graph.Node{order[1], order[0]}
	_, diags := Liveness(g, rev)
	if len(diags) == 0 || diags[0].Code != "schedule" {
		t.Fatalf("reversed order should raise a schedule diagnostic, got %v", diags)
	}
}

func TestProveMemoryProven(t *testing.T) {
	g, infos := seqModel(t)
	order, _ := g.TopoSort()
	region := Region{"L": symbolic.NewInterval(2, 16, 2)}
	live, _ := Liveness(g, order)
	v, diags := ProveMemory(g, infos, order, region, live)
	if !v.Proven {
		t.Fatalf("expected proven, got reason %q (diags %v)", v.Reason, diags)
	}
	if v.Plan == nil || v.Program == nil {
		t.Fatal("proven verdict must carry the region plan")
	}
	// Worst-case sizing: both buffers are [1, L, 8] f32 at L=16.
	for _, b := range v.Program.Bufs {
		if b.Size != 1*16*8*4 {
			t.Errorf("buffer %s sized %d, want %d", b.Name, b.Size, 1*16*8*4)
		}
	}
	if err := v.Plan.Validate(v.Program); err != nil {
		t.Errorf("region plan invalid: %v", err)
	}
}

func TestProveMemoryUnprovable(t *testing.T) {
	g, infos := seqModel(t)
	order, _ := g.TopoSort()
	live, _ := Liveness(g, order)

	// Empty region: placed buffer sizes depend on L, which is unbounded.
	v, diags := ProveMemory(g, infos, order, Region{}, live)
	if v.Proven {
		t.Fatal("empty region must be unprovable")
	}
	if v.Reason == "" {
		t.Fatal("unprovable verdict must record a reason")
	}
	found := false
	for _, d := range diags {
		if d.Code == "unprovable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unprovable verdict must emit an unprovable diagnostic, got %v", diags)
	}
}

func TestProveMemoryNegativeDim(t *testing.T) {
	// y = [1, L-8, 4]: negative for part of the region [2,16].
	g := graph.New("neg")
	L := symbolic.NewSym("L")
	g.AddInput("x", tensor.Float32, lattice.Ranked(
		lattice.FromInt(1), lattice.FromExpr(L), lattice.FromInt(4)))
	g.Op("Slice", "sl", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	infos := map[string]lattice.Info{
		"x": {Shape: lattice.Ranked(lattice.FromInt(1), lattice.FromExpr(L), lattice.FromInt(4))},
		"y": {Shape: lattice.Ranked(lattice.FromInt(1),
			lattice.FromExpr(symbolic.Sub(L, symbolic.NewConst(8))), lattice.FromInt(4))},
	}
	order := g.Nodes
	live, _ := Liveness(g, order)
	v, diags := ProveMemory(g, infos, order, Region{"L": symbolic.NewInterval(2, 16, 2)}, live)
	if v.Proven {
		t.Fatal("possibly-negative dim must be unprovable")
	}
	hasNeg := false
	for _, d := range diags {
		if d.Code == "negative-dim" && d.Severity == Error {
			hasNeg = true
		}
	}
	if !hasNeg {
		t.Fatalf("want negative-dim diagnostic, got %v", diags)
	}
}

func TestRegionContainsEnv(t *testing.T) {
	r := Region{"L": symbolic.NewInterval(32, 384, 1), "H": symbolic.NewInterval(224, 640, 32)}
	if !r.ContainsEnv(symbolic.Env{"L": 100, "H": 256}) {
		t.Error("member env rejected")
	}
	if r.ContainsEnv(symbolic.Env{"L": 100, "H": 250}) {
		t.Error("off-stride H accepted")
	}
	if r.ContainsEnv(symbolic.Env{"L": 100}) {
		t.Error("env missing a region symbol accepted")
	}
	// An empty region assumed nothing: its proofs hold for any binding.
	if !(Region{}).ContainsEnv(symbolic.Env{"L": 1}) {
		t.Error("empty region must admit vacuously")
	}
}

func TestRegionFromFacts(t *testing.T) {
	r := RegionFromFacts([]guard.Fact{
		{Symbol: "H", Kind: guard.FactRange, Min: 224, Max: 640},
		{Symbol: "H", Kind: guard.FactDivisible, Mod: 32, Rem: 0},
		{Symbol: "L", Kind: guard.FactRange, Min: 32, Max: 384},
	})
	h := r["H"]
	if h.Lo != 224 || h.Hi != 640 || h.Stride != 32 {
		t.Errorf("H region = %s, want [224,640]/32", h)
	}
	if l := r["L"]; l.Lo != 32 || l.Hi != 384 || l.Stride != 1 {
		t.Errorf("L region = %s, want [32,384]", l)
	}
}

func TestLintFindings(t *testing.T) {
	g := graph.New("lint")
	L := symbolic.NewSym("L")
	g.AddInput("x", tensor.Float32, lattice.Ranked(
		lattice.FromInt(1), lattice.FromExpr(L), lattice.FromInt(4)))
	g.AddInitializer("c1", tensor.FromInts([]int64{1}, []int64{3}))
	g.AddInitializer("c2", tensor.FromInts([]int64{1}, []int64{4}))
	// Dead node: output never used.
	g.Op("Relu", "deadRelu", []string{"x"}, []string{"unused"}, nil)
	// Const-foldable: both inputs are initializers.
	g.Op("Add", "foldme", []string{"c1", "c2"}, []string{"folded"}, nil)
	g.Op("Relu", "keep", []string{"x"}, []string{"y"}, nil)
	g.Op("Reshape", "rs", []string{"y", "folded"}, []string{"z"}, nil)
	g.AddOutput("z")
	res, err := rdp.Analyze(g, nil, rdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diags := Lint(g, res.Infos, Region{"L": symbolic.NewInterval(2, 16, 1)})
	want := map[string]bool{"dead-node": false, "const-foldable": false}
	for _, d := range diags {
		if _, tracked := want[d.Code]; tracked {
			want[d.Code] = true
		}
	}
	for code, got := range want {
		if !got {
			t.Errorf("missing %s diagnostic in %v", code, diags)
		}
	}
}

func TestAnalyzeFormatStable(t *testing.T) {
	g, infos := seqModel(t)
	rep := Analyze(Input{Model: "m", Graph: g, Infos: infos,
		Region: Region{"L": symbolic.NewInterval(2, 16, 2)}})
	a, b := rep.Format(), rep.Format()
	if a != b {
		t.Fatal("Format is not deterministic")
	}
	if !strings.Contains(a, "memory plan: proven") {
		t.Errorf("report should prove the chain model:\n%s", a)
	}
	if !strings.Contains(a, "exec plan: proven") {
		t.Errorf("exec plan should be proven:\n%s", a)
	}
}
