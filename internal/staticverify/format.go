package staticverify

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders the report as the stable, deterministic text the
// `sod2 lint` command prints and the golden-snapshot tests pin. Every
// line is sorted or ordered by construction, so byte-identical output
// means identical findings.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s: %d nodes\n", r.Model, r.NodeCount)

	syms := make([]string, 0, len(r.Region))
	for s := range r.Region {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	if len(syms) == 0 {
		b.WriteString("region: (none)\n")
	} else {
		parts := make([]string, len(syms))
		for i, s := range syms {
			parts[i] = fmt.Sprintf("%s∈%s", s, r.Region[s])
		}
		fmt.Fprintf(&b, "region: %s\n", strings.Join(parts, " "))
	}

	if r.Exec.Proven {
		b.WriteString("exec plan: proven\n")
	} else {
		fmt.Fprintf(&b, "exec plan: UNPROVEN (%s)\n", r.Exec.Reason)
	}
	if r.Mem.Proven {
		fmt.Fprintf(&b, "memory plan: proven (%d buffers, arena %d bytes, all shapes in region)\n",
			r.Mem.Buffers, r.Mem.ArenaSize)
	} else {
		fmt.Fprintf(&b, "memory plan: UNPROVEN (%s)\n", r.Mem.Reason)
	}
	if r.Wave.Proven {
		fmt.Fprintf(&b, "wavefront plan: proven (%d waves, max width %d, widened arena %d bytes)\n",
			r.Wave.Waves, r.Wave.MaxWidth, r.Wave.ArenaSize)
	} else if r.Wave.Reason != "" {
		fmt.Fprintf(&b, "wavefront plan: UNPROVEN (%s)\n", r.Wave.Reason)
	}

	if r.Spec.Checked {
		if r.Spec.Proven {
			fmt.Fprintf(&b, "specialization: validated (%d branches pruned, %d values constified, %d loops bounded, %d nodes removed, %d MVC sets narrowed)\n",
				r.Spec.BranchesPruned, r.Spec.Constified, r.Spec.LoopsBounded, r.Spec.NodesRemoved, r.Spec.Narrowed)
		} else {
			fmt.Fprintf(&b, "specialization: REJECTED (%s)\n", r.Spec.Reason)
		}
	}

	if len(r.Diagnostics) == 0 {
		b.WriteString("diagnostics: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "diagnostics: %d\n", len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		loc := d.Node
		if loc == "" {
			loc = d.Value
		} else if d.Value != "" {
			loc += "/" + d.Value
		}
		if loc == "" {
			loc = "-"
		}
		fmt.Fprintf(&b, "  %-5s %-18s %-24s %s\n", d.Severity, d.Code, loc, d.Detail)
	}
	return b.String()
}
