// Package staticverify is the compile-time plan verifier and diagnostics
// subsystem: a symbolic-range analysis over the RDP fixed point that
// proves — once, for an entire *region* of input shapes — what the
// guarded runtime otherwise re-checks per concrete shape at serve time.
//
// Given a graph, its RDP analysis, the planned execution order, and a
// Region (strided intervals for the model's symbolic input dimensions,
// derived from the input sampling spec and analyzed facts), it
// establishes three results:
//
//   - Execution-plan proof: the SEP order schedules every node exactly
//     once and after all of its producers (shape-independent).
//   - Liveness proof: buffer lifetimes derived for the memory plan cover
//     every use of every value under the planned order.
//   - Memory-plan proof: a single region-wide arena plan, placed with
//     worst-case (interval upper bound) buffer sizes, is overlap-free for
//     *every* shape in the region — or an explicit "unprovable" verdict
//     naming the reason (unbounded symbol, possibly-negative dimension,
//     divisor that may be zero).
//
// A proven memory plan upgrades the serving path from shape-keyed to
// shape-family-keyed caching: any request whose input shapes bind inside
// the region is served with the pre-verified plan and skips contract and
// plan re-verification entirely (frameworks.Report.RegionCacheHit).
//
// The package also runs a structured graph lint pass (dead nodes,
// unreachable If branches under range facts, constant-foldable nodes
// missed by internal/fold, contradictory symbolic constraints, ISVDOS
// operators fed by provably-constant values) whose output feeds the
// `sod2 lint` CLI and the golden-snapshot regression tests.
package staticverify

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/symbolic"
)

// Region maps each symbolic input dimension to the strided interval of
// values it can take. It is the "for all shapes in ..." quantifier of
// every proof in this package: verdicts hold for exactly the
// environments whose symbol bindings are members of their intervals.
type Region map[string]symbolic.Interval

// RegionFromFacts converts analyzed input facts (ranges, divisibility)
// into a Region. Range and divisibility facts for the same symbol are
// intersected into one strided interval.
func RegionFromFacts(facts []guard.Fact) Region {
	r := Region{}
	for _, f := range facts {
		var iv symbolic.Interval
		switch f.Kind {
		case guard.FactDivisible:
			if f.Mod <= 0 {
				continue
			}
			// Representable alone only with range context; start from a
			// wide window and rely on intersection with the range fact.
			lo := f.Rem
			iv = symbolic.NewInterval(lo, lo+(1<<40)*f.Mod, f.Mod)
		default:
			iv = symbolic.NewInterval(f.Min, f.Max, 1)
		}
		if prev, ok := r[f.Symbol]; ok {
			iv = prev.Intersect(iv)
		}
		r[f.Symbol] = iv
	}
	return r
}

// Severity ranks diagnostics.
type Severity uint8

// Severities, least to most severe.
const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	default:
		return "error"
	}
}

// Diagnostic is one structured finding of the verifier or the lint pass.
type Diagnostic struct {
	// Code is the stable machine-readable finding class: "dead-node",
	// "unreachable-branch", "const-foldable", "contradiction",
	// "isvdos-const", "unbounded-symbol", "negative-dim", "schedule",
	// "lifetime".
	Code     string
	Severity Severity
	// Node names the offending node ("" for graph- or region-level
	// findings); Value names the offending tensor when applicable.
	Node  string
	Value string
	// Detail is the human-readable explanation.
	Detail string
}

// ExecVerdict is the outcome of the execution-plan proof.
type ExecVerdict struct {
	Proven bool
	Reason string // set when !Proven
}

// Input bundles everything the verifier analyzes. Order may be nil, in
// which case the graph's topological order is used.
type Input struct {
	Model  string
	Graph  *graph.Graph
	Infos  map[string]lattice.Info
	Order  []*graph.Node
	Region Region
	// Waves, when non-nil, are the planned wavefront step ranges
	// (half-open, contiguous over Order) to certify for parallel
	// execution; nil skips the wavefront proof.
	Waves [][2]int
	// Spec, when non-nil, requests translation validation: Graph/Infos
	// above describe the *specialized* graph, and Spec carries the
	// original graph plus the certificate to re-check against it.
	Spec *SpecInput
}

// Report is the complete result of one static verification run.
type Report struct {
	Model     string
	NodeCount int
	Region    Region
	Exec      ExecVerdict
	Mem       MemVerdict
	// Wave certifies the wavefront partition and its widened memory
	// plan for parallel execution (zero value when Input.Waves was nil).
	Wave WaveVerdict
	// Spec is the translation-validation verdict for the specialization
	// certificate (zero value when Input.Spec was nil).
	Spec SpecVerdict
	// Liveness maps every value produced under the order to its static
	// [Birth, Death] step interval (the intervals the memory plan uses,
	// and the intervals the instrumented-execution property test checks).
	Liveness    map[string]LifeInterval
	Diagnostics []Diagnostic
}

// Errors counts Error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Analyze runs the full verifier: execution-plan proof, liveness
// derivation and proof, symbolic memory-plan proof, and the graph lint
// pass. It never fails — unprovable properties come back as verdicts and
// diagnostics, not errors.
func Analyze(in Input) *Report {
	r := &Report{Model: in.Model, Region: in.Region}
	order := in.Order
	if order == nil {
		if sorted, err := in.Graph.TopoSort(); err == nil {
			order = sorted
		} else {
			order = in.Graph.Nodes
		}
	}
	r.NodeCount = len(order)

	// 1. Execution-plan proof (shape-independent).
	if err := guard.VerifyExecutionPlan(in.Graph, order); err != nil {
		r.Exec = ExecVerdict{Proven: false, Reason: err.Error()}
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Code: "schedule", Severity: Error, Detail: err.Error()})
	} else {
		r.Exec = ExecVerdict{Proven: true}
	}

	// 2. Liveness intervals + def-use proof.
	live, liveDiags := Liveness(in.Graph, order)
	r.Liveness = live
	r.Diagnostics = append(r.Diagnostics, liveDiags...)

	// 3. Symbolic memory-plan proof over the region.
	verdict, memDiags := ProveMemory(in.Graph, in.Infos, order, in.Region, live)
	r.Mem = verdict
	r.Diagnostics = append(r.Diagnostics, memDiags...)
	if !r.Exec.Proven && r.Mem.Proven {
		// A memory plan over an invalid schedule is meaningless.
		r.Mem.Proven = false
		r.Mem.Reason = "execution plan not proven: " + r.Exec.Reason
		r.Mem.Plan = nil
	}

	// 4. Wavefront proof: antichain partition + wave-widened memory
	// plan (only meaningful over a proven sequential plan and schedule).
	if in.Waves != nil {
		wave, waveDiags := ProveWavefronts(order, in.Waves, r.Mem)
		r.Wave = wave
		r.Diagnostics = append(r.Diagnostics, waveDiags...)
		if !r.Exec.Proven && r.Wave.Proven {
			r.Wave.Proven = false
			r.Wave.Reason = "execution plan not proven: " + r.Exec.Reason
			r.Wave.Plan = nil
		}
	}

	// 5. Translation validation of the specialization certificate: the
	// specialized graph (whose plans steps 1–4 just re-proved) must be
	// shown equivalent to the original over the region.
	if in.Spec != nil {
		spec, specDiags := ValidateSpecialization(in.Graph, in.Infos, in.Region, in.Spec)
		r.Spec = spec
		r.Diagnostics = append(r.Diagnostics, specDiags...)
	}

	// 6. Graph lint.
	r.Diagnostics = append(r.Diagnostics, Lint(in.Graph, in.Infos, in.Region)...)

	sortDiagnostics(r.Diagnostics)
	return r
}

// sortDiagnostics orders findings deterministically by (node, code)
// first — so a golden diff groups every finding about one node together
// and reflects real changes only — then severity (most severe first),
// value, detail.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Detail < b.Detail
	})
}
