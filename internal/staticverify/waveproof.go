package staticverify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/memplan"
)

// WaveVerdict is the outcome of the wavefront-parallel memory proof:
// whether the planned wave partition is a sequence of antichains and
// whether a wave-widened region-wide arena plan exists whose offsets are
// disjoint for every pair of buffers live in the same wave — the
// property that makes concurrent same-wave placement sound for every
// shape in the region and every interleaving of wave workers.
type WaveVerdict struct {
	Proven bool
	Reason string
	// Plan is the wave-widened region-wide arena plan (Proven only).
	// Serving uses it for wavefront-parallel requests admitted by the
	// region fast path.
	Plan *memplan.Plan
	// Waves and MaxWidth summarize the partition; ArenaSize is the
	// widened plan's footprint (>= the sequential proof's ArenaSize).
	Waves     int
	MaxWidth  int
	ArenaSize int64
}

// ProveWavefronts certifies a wavefront partition against the already
// proven sequential artifacts. waves are half-open [start,end) step
// ranges over `order` (contiguous runs of the planned order). The proof
// has three parts:
//
//  1. Antichain: no node of a wave consumes a value produced inside the
//     same wave. Direct edges suffice: the execution-plan proof
//     establishes that order is topological, and any dependency path
//     between two nodes of a contiguous run stays inside the run, so a
//     transitive dependency implies a direct intra-wave edge somewhere
//     in the run.
//  2. Widening soundness: the wave-widened program's intervals contain
//     the per-step intervals (memplan.Covers) — lifetimes only grow.
//  3. Disjointness: a fresh plan placed against the widened worst-case
//     program validates overlap-free. Two buffers live in the same wave
//     have overlapping widened intervals by construction, so the
//     validated plan separates them for every shape in the region.
func ProveWavefronts(order []*graph.Node, waves [][2]int, mem MemVerdict) (WaveVerdict, []Diagnostic) {
	v := WaveVerdict{Waves: len(waves)}
	var diags []Diagnostic
	fail := func(code, reason string) {
		v.Reason = reason
		diags = append(diags, Diagnostic{Code: code, Severity: Warn,
			Detail: "wavefront plan not proven: " + reason})
	}
	if len(waves) == 0 {
		v.Reason = "no wavefront partition"
		return v, nil
	}

	// 1. Partition + antichain proof over direct edges.
	next := 0
	for wi, r := range waves {
		if r[0] != next || r[1] <= r[0] || r[1] > len(order) {
			fail("wave-partition", fmt.Sprintf("wave %d range [%d,%d) does not continue the partition at step %d", wi, r[0], r[1], next))
			return v, diags
		}
		next = r[1]
		if r[1]-r[0] > v.MaxWidth {
			v.MaxWidth = r[1] - r[0]
		}
		produced := make(map[string]string, 2*(r[1]-r[0]))
		for s := r[0]; s < r[1]; s++ {
			n := order[s]
			for _, in := range n.Inputs {
				if p, ok := produced[in]; in != "" && ok {
					fail("wave-antichain", fmt.Sprintf("wave %d is not an antichain: %s consumes %q produced by %s in the same wave", wi, n.Name, in, p))
					return v, diags
				}
			}
			for _, o := range n.Outputs {
				if o != "" {
					produced[o] = n.Name
				}
			}
		}
	}
	if next != len(order) {
		fail("wave-partition", fmt.Sprintf("waves cover %d of %d steps", next, len(order)))
		return v, diags
	}

	// 2+3. Widened memory plan, built from the proven sequential
	// worst-case program so the region quantifier carries over.
	if !mem.Proven || mem.Program == nil {
		fail("wave-memory", "sequential memory plan not proven: "+mem.Reason)
		return v, diags
	}
	widened, err := memplan.WidenWaves(mem.Program, waves)
	if err != nil {
		fail("wave-memory", err.Error())
		return v, diags
	}
	if err := memplan.Covers(widened, mem.Program); err != nil {
		fail("wave-memory", "widening shrank a lifetime: "+err.Error())
		return v, diags
	}
	plan := memplan.PeakFirst(widened)
	if err := plan.Validate(widened); err != nil {
		diags = append(diags, Diagnostic{Code: "overlap", Severity: Error,
			Detail: "widened plan: " + err.Error()})
		v.Reason = "widened plan overlaps: " + err.Error()
		return v, diags
	}
	v.Proven = true
	v.Plan = plan
	v.ArenaSize = plan.ArenaSize
	return v, diags
}
