package staticverify

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/mvc"
	"repro/internal/tensor"
)

// SpecInput carries the pre-specialization world for translation
// validation: the original graph, its RDP fixed point, and the
// certificate the specializer emitted. Input.Graph/Infos describe the
// specialized graph the rest of the verifier (exec/liveness/memory/
// wavefront proofs) runs on.
type SpecInput struct {
	Orig      *graph.Graph
	OrigInfos map[string]lattice.Info
	Cert      *absint.Certificate
	// MinSize/MaxSize are the generic symbolic-extent assumptions the
	// MVC plans were built with (needed to re-derive narrowings).
	MinSize, MaxSize int64
}

// SpecVerdict is the outcome of the translation-validation pass.
type SpecVerdict struct {
	Checked bool
	Proven  bool
	Reason  string // set when Checked && !Proven
	// Summary counts of the validated certificate.
	BranchesPruned int
	Constified     int
	LoopsBounded   int
	NodesRemoved   int
	Narrowed       int
}

// ValidateSpecialization independently re-checks a specialization
// certificate: every decision is re-derived from the original graph's
// RDP fixed point by a fresh abstract-interpretation run, the recorded
// decisions must match the re-derived ones exactly, a mechanical replay
// of the certificate must reproduce the specialized graph node for node,
// and the recorded MVC narrowings must match a re-derived region plan.
// Combined with the verifier's own exec/liveness/memory/wavefront proofs
// over the specialized graph, a Proven verdict means the specialized
// graph is equivalent to the original over the region and all its plans
// re-prove.
func ValidateSpecialization(spec *graph.Graph, specInfos map[string]lattice.Info, region Region, in *SpecInput) (SpecVerdict, []Diagnostic) {
	if in == nil || in.Cert == nil {
		return SpecVerdict{}, nil
	}
	cert := in.Cert
	v := SpecVerdict{
		Checked:      true,
		Constified:   len(cert.Constified),
		LoopsBounded: len(cert.LoopBounds),
		NodesRemoved: len(cert.Removed),
		Narrowed:     len(cert.Narrowings),
	}
	for _, b := range cert.Branches {
		if b.Applied {
			v.BranchesPruned++
		}
	}
	fail := func(format string, args ...any) (SpecVerdict, []Diagnostic) {
		v.Proven = false
		v.Reason = fmt.Sprintf(format, args...)
		return v, []Diagnostic{{Code: "specialization", Severity: Error, Detail: v.Reason}}
	}

	// 1. The certificate's region must be the region being verified —
	// a certificate proven for a different region proves nothing here.
	if !sameRegion(Region(cert.Region), region) {
		return fail("certificate region %v does not match verified region %v", Region(cert.Region), region)
	}

	// 2. Re-derive every decision from the original graph with a fresh
	// abstract-interpretation run and demand an exact match.
	re := absint.Decide(in.Orig, in.OrigInfos, absint.Options{Region: cert.Region})
	if err := sameDecisions(cert, re); err != nil {
		return fail("decision mismatch: %v", err)
	}

	// 3. Mechanically replay the certificate on the original graph; the
	// result must reproduce the specialized graph exactly. Replay itself
	// cross-checks the recorded removal/rewrite/fold consequences.
	replayed, err := absint.Replay(in.Orig, cert)
	if err != nil {
		return fail("replay: %v", err)
	}
	if err := sameGraph(replayed, spec); err != nil {
		return fail("replayed graph differs from specialized graph: %v", err)
	}

	// 4. Re-derive the MVC narrowings on the specialized graph.
	base := mvc.BuildPlan(spec, specInfos, in.MinSize, in.MaxSize)
	narrowed := mvc.BuildPlanRegion(spec, specInfos, in.MinSize, in.MaxSize, cert.Region)
	if err := sameNarrowings(cert.Narrowings, mvc.DiffPlans(base, narrowed)); err != nil {
		return fail("narrowing mismatch: %v", err)
	}

	v.Proven = true
	return v, nil
}

func sameRegion(a, b Region) bool {
	if len(a) != len(b) {
		return false
	}
	for s, iv := range a {
		if b[s] != iv {
			return false
		}
	}
	return true
}

// sameDecisions checks the certificate's recorded decisions against a
// freshly re-derived decision list (Applied flags are structural, not
// analytical, and are checked by replay instead).
func sameDecisions(cert *absint.Certificate, re absint.DecisionList) error {
	if len(cert.Branches) != len(re.Branches) {
		return fmt.Errorf("%d recorded branch decisions, re-derived %d", len(cert.Branches), len(re.Branches))
	}
	for i, b := range cert.Branches {
		r := re.Branches[i]
		if b.Node != r.Node || b.Op != r.Op || b.Taken != r.Taken || b.RegionDep != r.RegionDep {
			return fmt.Errorf("branch %d: recorded %+v, re-derived %+v", i, b, r)
		}
	}
	if len(cert.Constified) != len(re.Constified) {
		return fmt.Errorf("%d recorded constified values, re-derived %d", len(cert.Constified), len(re.Constified))
	}
	for i, c := range cert.Constified {
		r := re.Constified[i]
		if c.Value != r.Value || c.RegionDep != r.RegionDep ||
			!equalInt64s(c.Dims, r.Dims) || !equalInt64s(c.Ints, r.Ints) {
			return fmt.Errorf("constified %d: recorded %+v, re-derived %+v", i, c, r)
		}
	}
	if len(cert.LoopBounds) != len(re.LoopBounds) {
		return fmt.Errorf("%d recorded loop bounds, re-derived %d", len(cert.LoopBounds), len(re.LoopBounds))
	}
	for i, l := range cert.LoopBounds {
		if re.LoopBounds[i] != l {
			return fmt.Errorf("loop bound %d: recorded %+v, re-derived %+v", i, l, re.LoopBounds[i])
		}
	}
	return nil
}

func sameNarrowings(recorded []absint.Narrowing, derived []mvc.VersionDiff) error {
	if len(recorded) != len(derived) {
		return fmt.Errorf("%d recorded, %d re-derived", len(recorded), len(derived))
	}
	for i, n := range recorded {
		d := derived[i]
		if n.Node != d.Node || !equalStringSlices(n.Before, d.Before) || !equalStringSlices(n.After, d.After) {
			return fmt.Errorf("narrowing %d: recorded %+v, re-derived %+v", i, n, d)
		}
	}
	return nil
}

// sameGraph checks structural equality of two graphs: inputs, outputs,
// initializer contents, and every node's name/op/wiring/attributes
// (subgraph attributes recursively).
func sameGraph(a, b *graph.Graph) error {
	if len(a.Inputs) != len(b.Inputs) {
		return fmt.Errorf("input count %d vs %d", len(a.Inputs), len(b.Inputs))
	}
	for i := range a.Inputs {
		if a.Inputs[i].Name != b.Inputs[i].Name || a.Inputs[i].DType != b.Inputs[i].DType ||
			!a.Inputs[i].Shape.Equal(b.Inputs[i].Shape) {
			return fmt.Errorf("input %d differs (%s vs %s)", i, a.Inputs[i].Name, b.Inputs[i].Name)
		}
	}
	if !equalStringSlices(a.Outputs, b.Outputs) {
		return fmt.Errorf("outputs %v vs %v", a.Outputs, b.Outputs)
	}
	if len(a.Initializers) != len(b.Initializers) {
		return fmt.Errorf("initializer count %d vs %d", len(a.Initializers), len(b.Initializers))
	}
	for name, at := range a.Initializers {
		bt, ok := b.Initializers[name]
		if !ok {
			return fmt.Errorf("initializer %q missing", name)
		}
		if !sameTensor(at, bt) {
			return fmt.Errorf("initializer %q contents differ", name)
		}
	}
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Errorf("node count %d vs %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if err := sameNode(a.Nodes[i], b.Nodes[i]); err != nil {
			return fmt.Errorf("node %d: %v", i, err)
		}
	}
	return nil
}

func sameNode(a, b *graph.Node) error {
	if a.Name != b.Name || a.OpType != b.OpType {
		return fmt.Errorf("%s/%s vs %s/%s", a.Name, a.OpType, b.Name, b.OpType)
	}
	if !equalStringSlices(a.Inputs, b.Inputs) || !equalStringSlices(a.Outputs, b.Outputs) {
		return fmt.Errorf("%s: wiring differs", a.Name)
	}
	if len(a.Attrs) != len(b.Attrs) {
		return fmt.Errorf("%s: attr count %d vs %d", a.Name, len(a.Attrs), len(b.Attrs))
	}
	for k, av := range a.Attrs {
		bv, ok := b.Attrs[k]
		if !ok || av.Kind != bv.Kind {
			return fmt.Errorf("%s: attr %q differs", a.Name, k)
		}
		if av.Kind == graph.AttrGraph {
			if (av.G == nil) != (bv.G == nil) {
				return fmt.Errorf("%s: attr %q subgraph presence differs", a.Name, k)
			}
			if av.G != nil {
				if err := sameGraph(av.G, bv.G); err != nil {
					return fmt.Errorf("%s: attr %q subgraph: %v", a.Name, k, err)
				}
			}
			continue
		}
		if av.I != bv.I || av.F != bv.F || av.S != bv.S || !equalInt64s(av.Ints, bv.Ints) {
			return fmt.Errorf("%s: attr %q value differs", a.Name, k)
		}
	}
	return nil
}

func sameTensor(a, b *tensor.Tensor) bool {
	if a == b {
		return true
	}
	if a.DType != b.DType || !equalInt64s(a.Shape, b.Shape) {
		return false
	}
	switch a.DType {
	case tensor.Float32:
		for i := range a.F {
			if a.F[i] != b.F[i] {
				return false
			}
		}
	case tensor.Int64:
		return equalInt64s(a.I, b.I)
	case tensor.Bool:
		for i := range a.B {
			if a.B[i] != b.B[i] {
				return false
			}
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
