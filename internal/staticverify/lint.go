package staticverify

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/ops"
	"repro/internal/symbolic"
)

// Lint runs the structural and range-fact lint pass over a graph:
//
//   - dead-node: a node none of whose outputs is consumed or exported.
//   - unreachable-branch: an If (or Switch) whose predicate is provably
//     constant under the RDP facts and the input region.
//   - const-foldable: a computable node whose every input is a
//     compile-time constant — a fold opportunity internal/fold missed.
//   - isvdos-const: an ISVDOS operator (Reshape, Range, ...) whose
//     shape-determining input value RDP proved constant — the dynamic
//     shape could be specialized statically.
//   - contradiction: an input-region symbol whose constraint set is
//     unsatisfiable (empty interval).
//   - unbounded-symbol: a symbolic input dimension with no analyzed
//     range, which blocks every region proof for sizes that use it.
func Lint(g *graph.Graph, infos map[string]lattice.Info, region Region) []Diagnostic {
	var diags []Diagnostic

	// Region-level findings.
	regionSyms := make([]string, 0, len(region))
	for s := range region {
		regionSyms = append(regionSyms, s)
	}
	sort.Strings(regionSyms)
	for _, s := range regionSyms {
		if region[s].IsEmpty() {
			diags = append(diags, Diagnostic{
				Code: "contradiction", Severity: Error, Value: s,
				Detail: fmt.Sprintf("input symbol %q has contradictory constraints: no value satisfies them", s),
			})
		}
	}
	for s := range inputSymbols(g, infos) {
		if _, ok := region[s]; !ok {
			diags = append(diags, Diagnostic{
				Code: "unbounded-symbol", Severity: Warn, Value: s,
				Detail: fmt.Sprintf("input symbol %q has no analyzed range; region proofs over it are unprovable", s),
			})
		}
	}

	consumers := g.Consumers()
	exported := make(map[string]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		exported[o] = true
	}
	for _, n := range g.Nodes {
		diags = append(diags, lintNode(g, n, infos, region, consumers, exported)...)
	}
	return diags
}

func lintNode(g *graph.Graph, n *graph.Node, infos map[string]lattice.Info,
	region Region, consumers map[string][]*graph.Node, exported map[string]bool) []Diagnostic {

	var diags []Diagnostic

	// dead-node: nothing downstream ever observes this node.
	dead := true
	for _, o := range n.Outputs {
		if o != "" && (len(consumers[o]) > 0 || exported[o]) {
			dead = false
			break
		}
	}
	if dead {
		diags = append(diags, Diagnostic{
			Code: "dead-node", Severity: Warn, Node: n.Name,
			Detail: fmt.Sprintf("%s node: no output is consumed or exported", n.OpType),
		})
	}

	// unreachable-branch: predicate provably constant over the region.
	switch n.OpType {
	case "If":
		if len(n.Inputs) > 0 {
			if verdict, known := constTruth(infos[n.Inputs[0]].Value, region); known {
				branch := "else"
				if !verdict {
					branch = "then"
				}
				diags = append(diags, Diagnostic{
					Code: "unreachable-branch", Severity: Info, Node: n.Name, Value: n.Inputs[0],
					Detail: fmt.Sprintf("condition is provably %v for every shape in the region; %s branch is unreachable", verdict, branch),
				})
			}
		}
	case "Switch":
		if len(n.Inputs) >= 2 {
			if verdict, known := constTruth(infos[n.Inputs[0]].Value, region); known {
				diags = append(diags, Diagnostic{
					Code: "unreachable-branch", Severity: Info, Node: n.Name, Value: n.Inputs[0],
					Detail: fmt.Sprintf("predicate is provably %v for every shape in the region; the other route never executes", verdict),
				})
			}
		}
	}

	if controlFlowOp(n.OpType) {
		return diags
	}

	// const-foldable: every input is an initializer (or omitted) — the
	// node's result is a compile-time constant internal/fold left behind.
	foldable := len(n.Inputs) > 0
	for _, in := range n.Inputs {
		if in == "" {
			continue
		}
		if _, isConst := g.Initializers[in]; !isConst {
			foldable = false
			break
		}
	}
	if foldable {
		diags = append(diags, Diagnostic{
			Code: "const-foldable", Severity: Info, Node: n.Name,
			Detail: fmt.Sprintf("%s node: every input is a compile-time constant; fold pass missed it", n.OpType),
		})
	}

	// isvdos-const: a value-determined-shape op whose non-constant input
	// is nonetheless proven constant by value propagation.
	if !foldable && ops.ClassOf(n.OpType) == ops.ISVDOS {
		for _, in := range n.Inputs {
			if in == "" || g.IsGraphInput(in) {
				continue
			}
			if _, isConst := g.Initializers[in]; isConst {
				continue
			}
			if vals, ok := infos[in].Value.Ints(); ok {
				diags = append(diags, Diagnostic{
					Code: "isvdos-const", Severity: Info, Node: n.Name, Value: in,
					Detail: fmt.Sprintf("%s input %q is provably %v; the value-determined shape could be specialized statically", n.OpType, in, vals),
				})
			}
		}
	}
	return diags
}

// constTruth decides a scalar predicate's truth value when it is
// provable: either RDP tracked the concrete value, or its symbolic
// expression has a range over the region that excludes (or pins) zero.
func constTruth(v lattice.ValueInfo, region Region) (verdict, known bool) {
	if vals, ok := v.Ints(); ok && len(vals) == 1 {
		return vals[0] != 0, true
	}
	if v.Kind == lattice.ValueElems && len(v.Elems) == 1 && v.Elems[0].IsExpr() {
		iv, err := symbolic.IntervalOf(v.Elems[0].E, map[string]symbolic.Interval(region))
		if err != nil {
			return false, false
		}
		if !iv.Contains(0) {
			return true, true
		}
		if iv.IsPoint() && iv.Lo == 0 {
			return false, true
		}
	}
	return false, false
}
