package staticverify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/symbolic"
)

func provenSeq(t *testing.T) ([]*graph.Node, MemVerdict) {
	t.Helper()
	g, infos := seqModel(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	region := Region{"L": symbolic.NewInterval(2, 16, 2)}
	live, _ := Liveness(g, order)
	v, diags := ProveMemory(g, infos, order, region, live)
	if !v.Proven {
		t.Fatalf("sequential proof failed: %q (%v)", v.Reason, diags)
	}
	return order, v
}

func TestProveWavefrontsProven(t *testing.T) {
	order, mem := provenSeq(t)
	// One wave per step: trivially an antichain partition.
	waves := make([][2]int, len(order))
	for i := range order {
		waves[i] = [2]int{i, i + 1}
	}
	v, diags := ProveWavefronts(order, waves, mem)
	if !v.Proven {
		t.Fatalf("not proven: %q (%v)", v.Reason, diags)
	}
	if v.Plan == nil || v.Waves != len(order) || v.MaxWidth != 1 {
		t.Fatalf("verdict %+v", v)
	}
	// Width-1 waves never widen anything: same footprint.
	if v.ArenaSize != mem.Plan.ArenaSize {
		t.Fatalf("trivial partition changed arena: %d vs %d", v.ArenaSize, mem.Plan.ArenaSize)
	}
}

func TestProveWavefrontsRejectsDependentWave(t *testing.T) {
	order, mem := provenSeq(t)
	// The chain mm→act in one wave violates the antichain requirement.
	v, diags := ProveWavefronts(order, [][2]int{{0, len(order)}}, mem)
	if v.Proven {
		t.Fatal("dependent wave proven")
	}
	found := false
	for _, d := range diags {
		if d.Code == "wave-antichain" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want wave-antichain diagnostic, got %v", diags)
	}
}

func TestProveWavefrontsRejectsBadPartition(t *testing.T) {
	order, mem := provenSeq(t)
	v, _ := ProveWavefronts(order, [][2]int{{0, 1}}, mem)
	if v.Proven {
		t.Fatal("partial partition proven")
	}
}

func TestProveWavefrontsRequiresSequentialProof(t *testing.T) {
	order, _ := provenSeq(t)
	waves := make([][2]int, len(order))
	for i := range order {
		waves[i] = [2]int{i, i + 1}
	}
	v, diags := ProveWavefronts(order, waves, MemVerdict{Reason: "unbounded symbol"})
	if v.Proven {
		t.Fatal("proven without a sequential memory proof")
	}
	if len(diags) == 0 || diags[0].Code != "wave-memory" {
		t.Fatalf("want wave-memory diagnostic, got %v", diags)
	}
}
