package staticverify

import (
	"encoding/json"
	"sort"
)

// The JSON report mirrors Format()'s content with stable, documented
// field order (struct declaration order) so CI and external tooling can
// consume diagnostics without parsing the human format. Absent optional
// sections are omitted rather than emitted as zero values.

// JSONRegionEntry is one symbol's interval, sorted by symbol.
type JSONRegionEntry struct {
	Symbol   string `json:"symbol"`
	Interval string `json:"interval"`
}

// JSONDiagnostic is one finding.
type JSONDiagnostic struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Node     string `json:"node,omitempty"`
	Value    string `json:"value,omitempty"`
	Detail   string `json:"detail"`
}

// JSONSpec summarizes the translation-validation verdict.
type JSONSpec struct {
	Validated      bool   `json:"validated"`
	Reason         string `json:"reason,omitempty"`
	BranchesPruned int    `json:"branches_pruned"`
	Constified     int    `json:"constified"`
	LoopsBounded   int    `json:"loops_bounded"`
	NodesRemoved   int    `json:"nodes_removed"`
	MVCNarrowed    int    `json:"mvc_narrowed"`
}

// JSONReport is the machine-readable form of a Report.
type JSONReport struct {
	Model       string            `json:"model"`
	Nodes       int               `json:"nodes"`
	Region      []JSONRegionEntry `json:"region,omitempty"`
	ExecProven  bool              `json:"exec_proven"`
	ExecReason  string            `json:"exec_reason,omitempty"`
	MemProven   bool              `json:"mem_proven"`
	MemReason   string            `json:"mem_reason,omitempty"`
	MemBuffers  int               `json:"mem_buffers,omitempty"`
	MemArena    int64             `json:"mem_arena_bytes,omitempty"`
	WaveProven  bool              `json:"wave_proven"`
	WaveReason  string            `json:"wave_reason,omitempty"`
	Waves       int               `json:"waves,omitempty"`
	MaxWidth    int               `json:"max_width,omitempty"`
	WaveArena   int64             `json:"wave_arena_bytes,omitempty"`
	Spec        *JSONSpec         `json:"specialization,omitempty"`
	Errors      int               `json:"errors"`
	Diagnostics []JSONDiagnostic  `json:"diagnostics"`
}

// JSONReportOf converts a Report (diagnostics already sorted by
// Analyze) into its machine-readable form.
func JSONReportOf(r *Report) JSONReport {
	out := JSONReport{
		Model:      r.Model,
		Nodes:      r.NodeCount,
		ExecProven: r.Exec.Proven,
		ExecReason: r.Exec.Reason,
		MemProven:  r.Mem.Proven,
		MemReason:  r.Mem.Reason,
		MemBuffers: r.Mem.Buffers,
		MemArena:   r.Mem.ArenaSize,
		WaveProven: r.Wave.Proven,
		WaveReason: r.Wave.Reason,
		Waves:      r.Wave.Waves,
		MaxWidth:   r.Wave.MaxWidth,
		WaveArena:  r.Wave.ArenaSize,
		Errors:     r.Errors(),
	}
	syms := make([]string, 0, len(r.Region))
	for s := range r.Region {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		out.Region = append(out.Region, JSONRegionEntry{Symbol: s, Interval: r.Region[s].String()})
	}
	if r.Spec.Checked {
		out.Spec = &JSONSpec{
			Validated:      r.Spec.Proven,
			Reason:         r.Spec.Reason,
			BranchesPruned: r.Spec.BranchesPruned,
			Constified:     r.Spec.Constified,
			LoopsBounded:   r.Spec.LoopsBounded,
			NodesRemoved:   r.Spec.NodesRemoved,
			MVCNarrowed:    r.Spec.Narrowed,
		}
	}
	out.Diagnostics = make([]JSONDiagnostic, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, JSONDiagnostic{
			Severity: d.Severity.String(),
			Code:     d.Code,
			Node:     d.Node,
			Value:    d.Value,
			Detail:   d.Detail,
		})
	}
	return out
}

// FormatJSON renders the report as indented JSON with a trailing
// newline. Field order is fixed by the JSONReport declaration, so
// byte-identical output means identical findings — the same golden
// property Format() has.
func (r *Report) FormatJSON() (string, error) {
	b, err := json.MarshalIndent(JSONReportOf(r), "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
