package staticverify

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtypes"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/memplan"
	"repro/internal/symbolic"
)

// MemVerdict is the outcome of the symbolic memory-plan proof. When
// Proven, Plan is a single arena layout valid for every shape in the
// region — serving may use it without per-shape re-planning or
// re-verification. When not, Reason names why the property is
// unprovable (never a silent skip) and the serving path must fall back
// to per-shape planning.
type MemVerdict struct {
	Proven bool
	Reason string
	// Plan/Program are the region-wide worst-case plan (Proven only).
	Plan    *memplan.Plan
	Program *memplan.Program
	// Buffers and ArenaSize summarize the proven plan.
	Buffers   int
	ArenaSize int64
}

// ContainsEnv reports whether a concrete symbol binding lies inside the
// region: every region symbol must be bound and a member of its
// interval. This is the serve-time admission test for the shape-family
// cache — a proof quantified over the region applies to exactly these
// environments. An empty region admits every binding: it means the
// proof assumed nothing about any symbol (a fully static model), so it
// holds vacuously for all of them.
func (r Region) ContainsEnv(env symbolic.Env) bool {
	for s, iv := range r {
		v, ok := env[s]
		if !ok || !iv.Contains(v) {
			return false
		}
	}
	return true
}

// inputSymbols collects the free symbols of the analyzed graph-input
// shapes — the symbols a concrete request binds via BindInputs.
func inputSymbols(g *graph.Graph, infos map[string]lattice.Info) map[string]bool {
	syms := make(map[string]bool)
	for _, in := range g.Inputs {
		shape := in.Shape
		if info, ok := infos[in.Name]; ok && info.Shape.Kind == lattice.ShapeRanked {
			shape = info.Shape
		}
		if shape.Kind != lattice.ShapeRanked {
			continue
		}
		for _, d := range shape.Dims {
			if d.IsExpr() {
				for _, s := range symbolic.FreeSyms(d.E) {
					syms[s] = true
				}
			}
		}
	}
	return syms
}

// symsWithin reports whether every free symbol of e is in the set.
func symsWithin(e symbolic.Expr, set map[string]bool) bool {
	for _, s := range symbolic.FreeSyms(e) {
		if !set[s] {
			return false
		}
	}
	return true
}

// ProveMemory attempts the region-wide memory-plan proof. It mirrors the
// per-shape planner exactly — same control-flow skip, same consume set,
// same "unresolvable shapes allocate dynamically" rule — but sizes every
// placed buffer at its interval upper bound over the region, so a valid
// worst-case plan is overlap-free for every member shape. Dimensions
// that the per-shape contract would range-check are proven non-negative
// over the whole region; any dimension that cannot be bounded (or that
// may go negative for some member) makes the verdict unprovable with the
// reason recorded.
func ProveMemory(g *graph.Graph, infos map[string]lattice.Info, order []*graph.Node,
	region Region, live map[string]LifeInterval) (MemVerdict, []Diagnostic) {

	var diags []Diagnostic
	var reasons []string
	unprovable := func(reason string) {
		reasons = append(reasons, reason)
	}

	ivEnv := map[string]symbolic.Interval(region)

	inSyms := inputSymbols(g, infos)

	// Non-negativity proof over every RDP-resolved dimension the
	// per-shape contract would check (CheckShapes): dims whose symbols
	// are all request-bound must be provably >= 0 across the region.
	names := make([]string, 0, len(infos))
	for name := range infos {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := infos[name].Shape
		if s.Kind != lattice.ShapeRanked {
			continue
		}
		for i, d := range s.Dims {
			if !d.IsExpr() || !symsWithin(d.E, inSyms) {
				continue // unbound at serve time too: dynamic path handles it
			}
			iv, err := symbolic.IntervalOf(d.E, ivEnv)
			if err != nil {
				unprovable(fmt.Sprintf("value %q dim %d (%s): %v", name, i, d.E, err))
				if strings.Contains(err.Error(), "no interval for symbol") {
					diags = append(diags, Diagnostic{
						Code: "unbounded-symbol", Severity: Warn, Value: name,
						Detail: fmt.Sprintf("dim %d (%s) has no range over the input region: %v", i, d.E, err),
					})
				}
				continue
			}
			if iv.Hi < 0 {
				unprovable(fmt.Sprintf("value %q dim %d (%s) is negative for every shape in the region (%s)", name, i, d.E, iv))
				diags = append(diags, Diagnostic{
					Code: "contradiction", Severity: Error, Value: name,
					Detail: fmt.Sprintf("dim %d (%s) evaluates inside %s — negative for every shape in the region", i, d.E, iv),
				})
			} else if iv.Lo < 0 {
				unprovable(fmt.Sprintf("value %q dim %d (%s) may be negative within the region (%s)", name, i, d.E, iv))
				diags = append(diags, Diagnostic{
					Code: "negative-dim", Severity: Error, Value: name,
					Detail: fmt.Sprintf("dim %d (%s) spans %s — negative for part of the input region", i, d.E, iv),
				})
			}
		}
	}

	// Worst-case placement program: the same step structure the per-shape
	// planner builds, with each placed buffer sized at its region upper
	// bound. Like the runtime planner, only values inferred float32 are
	// placed — the arena never holds int64/bool/quantized tensors, so
	// excluding them here keeps the proof's program identical to the one
	// the runtime validates against.
	dts := dtypes.Infer(g)
	keep := make(map[string]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		keep[o] = true
	}
	steps := make([]memplan.StepSpec, 0, len(order))
	for _, n := range order {
		var st memplan.StepSpec
		if !controlFlowOp(n.OpType) {
			for _, o := range n.Outputs {
				if o == "" || !dts.IsFloat(o) {
					continue
				}
				size, reason := worstCaseBytes(infos[o].Shape, inSyms, ivEnv)
				if reason != "" {
					unprovable(fmt.Sprintf("value %q: %s", o, reason))
					continue
				}
				if size > 0 {
					st.Produces = append(st.Produces, memplan.NamedSize{Name: o, Size: size})
				}
			}
		}
		for _, in := range n.Inputs {
			if in != "" && !g.IsGraphInput(in) {
				if _, isConst := g.Initializers[in]; !isConst {
					st.Consumes = append(st.Consumes, in)
				}
			}
		}
		steps = append(steps, st)
	}
	prog := memplan.FromSteps(steps, keep)
	plan := memplan.PeakFirst(prog)

	// Lifetime proof: every placed buffer's interval must match the
	// def-use liveness — covering all uses of the value.
	for _, b := range prog.Bufs {
		lv, ok := live[b.Name]
		if !ok {
			diags = append(diags, Diagnostic{
				Code: "lifetime", Severity: Error, Value: b.Name,
				Detail: "buffer placed for a value the schedule never produces",
			})
			unprovable(fmt.Sprintf("buffer %q has no liveness interval", b.Name))
			continue
		}
		if b.Birth != lv.Birth || b.Death < lv.Death {
			diags = append(diags, Diagnostic{
				Code: "lifetime", Severity: Error, Value: b.Name,
				Detail: fmt.Sprintf("buffer live [%d,%d] does not cover uses [%d,%d]", b.Birth, b.Death, lv.Birth, lv.Death),
			})
			unprovable(fmt.Sprintf("buffer %q lifetime [%d,%d] does not cover uses [%d,%d]", b.Name, b.Birth, b.Death, lv.Birth, lv.Death))
		}
	}

	// Disjointness proof: worst-case sizes admit no overlap among
	// concurrently-live buffers; actual sizes are bounded by worst-case,
	// so the layout is overlap-free for every shape in the region.
	if err := plan.Validate(prog); err != nil {
		diags = append(diags, Diagnostic{
			Code: "overlap", Severity: Error, Detail: err.Error(),
		})
		unprovable(err.Error())
	}

	v := MemVerdict{Buffers: len(prog.Bufs), ArenaSize: plan.ArenaSize}
	if len(reasons) == 0 {
		v.Proven = true
		v.Plan = plan
		v.Program = prog
	} else {
		v.Reason = strings.Join(dedupe(reasons), "; ")
		diags = append(diags, Diagnostic{
			Code: "unprovable", Severity: Warn,
			Detail: "memory plan not proven over the region: " + v.Reason,
		})
	}
	return v, diags
}

// worstCaseBytes returns the region upper bound of a value's byte size,
// or 0 when the value takes the dynamic-allocation path for every shape
// (unranked, non-expr dims, or symbols a request never binds — exactly
// the per-shape planner's skip conditions). A non-empty reason means the
// size is needed but cannot be bounded over the region.
func worstCaseBytes(s lattice.Shape, inSyms map[string]bool, ivEnv map[string]symbolic.Interval) (int64, string) {
	if s.Kind != lattice.ShapeRanked {
		return 0, ""
	}
	n := int64(1)
	for i, d := range s.Dims {
		if !d.IsExpr() {
			return 0, ""
		}
		if !symsWithin(d.E, inSyms) {
			return 0, "" // per-shape eval fails too: dynamic allocation
		}
		iv, err := symbolic.IntervalOf(d.E, ivEnv)
		if err != nil {
			return 0, fmt.Sprintf("dim %d (%s) unbounded over region: %v", i, d.E, err)
		}
		if iv.Lo < 0 {
			return 0, fmt.Sprintf("dim %d (%s) may be negative over region (%s)", i, d.E, iv)
		}
		n *= iv.Hi
	}
	return n * 4, ""
}

func controlFlowOp(op string) bool {
	switch op {
	case "Switch", "Combine", "If", "Loop":
		return true
	}
	return false
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
