package staticverify

import (
	"fmt"

	"repro/internal/graph"
)

// LifeInterval is a value's static live range in execution-step indices
// (inclusive): produced at Birth, last used at Death.
type LifeInterval struct {
	Birth, Death int
}

// Liveness derives the def-use live interval of every value produced by
// the order: Birth at the producing step, Death at the last consuming
// step (graph outputs stay live through the final step; values never
// consumed die at birth). These are exactly the intervals the memory
// planner allocates with, and the intervals the instrumented-execution
// property test compares against observed first/last touches.
//
// Def-use violations — a node consuming a value no step has produced, a
// value produced twice — come back as "schedule" diagnostics; the
// returned intervals then describe the first production only.
func Liveness(g *graph.Graph, order []*graph.Node) (map[string]LifeInterval, []Diagnostic) {
	live := make(map[string]LifeInterval)
	var diags []Diagnostic
	external := make(map[string]bool, len(g.Inputs)+len(g.Initializers))
	for _, in := range g.Inputs {
		external[in.Name] = true
	}
	for name := range g.Initializers {
		external[name] = true
	}
	for step, n := range order {
		for _, in := range n.Inputs {
			if in == "" || external[in] {
				continue
			}
			iv, born := live[in]
			if !born {
				diags = append(diags, Diagnostic{
					Code: "schedule", Severity: Error, Node: n.Name, Value: in,
					Detail: fmt.Sprintf("step %d consumes %q before any step produces it", step, in),
				})
				continue
			}
			iv.Death = step
			live[in] = iv
		}
		for _, o := range n.Outputs {
			if o == "" {
				continue
			}
			if prev, dup := live[o]; dup {
				diags = append(diags, Diagnostic{
					Code: "schedule", Severity: Error, Node: n.Name, Value: o,
					Detail: fmt.Sprintf("step %d re-produces %q (first produced at step %d)", step, o, prev.Birth),
				})
				continue
			}
			live[o] = LifeInterval{Birth: step, Death: step}
		}
	}
	last := len(order) - 1
	for _, o := range g.Outputs {
		if iv, ok := live[o]; ok && iv.Death < last {
			iv.Death = last
			live[o] = iv
		}
	}
	return live, diags
}
