// Package dtypes infers a static element type for every value in a
// graph, making the memory pipeline byte-width-aware: the arena planner
// uses it to keep non-float values out of the placement program (the
// runtime only arena-places float32 tensors), and the SEP/wavefront
// live-byte accounting uses it to charge 8 bytes for int64 shape
// tensors and 1 byte for bool masks instead of a flat 4.
//
// The inference mirrors the kernel registry's output types exactly
// where it assigns a narrow type, and defaults to Float32 everywhere
// else. Errors in either direction are fail-safe by construction:
// a value typed Float32 that turns out integral simply skips its
// reserved arena slot at runtime, and a value typed narrow that turns
// out float takes the dynamic-allocation path (no slot was planned for
// it), so a mis-inference can shift a tensor between arena and heap but
// can never alias two live buffers.
package dtypes

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Map assigns every value name an element type.
type Map map[string]tensor.DType

// SizeOf returns the per-element byte width the planner should charge
// for a value, defaulting to float32 when the value is untyped.
func (m Map) SizeOf(name string) int64 {
	if dt, ok := m[name]; ok {
		if s := dt.Size(); s > 0 {
			return s
		}
	}
	return 4
}

// IsFloat reports whether the value is (assumed) float32 — the only
// values the runtime arena places.
func (m Map) IsFloat(name string) bool {
	dt, ok := m[name]
	return !ok || dt == tensor.Float32
}

// Infer computes the value→dtype map for a graph, recursing into
// If/Loop bodies so control-flow outputs carry their branch types.
func Infer(g *graph.Graph) Map {
	m := Map{}
	infer(g, m)
	return m
}

func infer(g *graph.Graph, m Map) {
	for _, in := range g.Inputs {
		if _, ok := m[in.Name]; !ok {
			m[in.Name] = in.DType
		}
	}
	for name, t := range g.Initializers {
		if t.DType.IsQuantized() {
			// Packed weights dequantize to float32 inside every consuming
			// kernel (GEMM/CONV/Gather dequant-on-the-fly), so values
			// derived from them are float — and the map stays identical
			// to the float32 compile's, keeping memory proofs portable
			// across storage formats.
			m[name] = tensor.Float32
			continue
		}
		m[name] = t.DType
	}
	order, err := g.TopoSort()
	if err != nil {
		order = g.Nodes
	}
	for _, n := range order {
		inferNode(g, n, m)
	}
}

func inferNode(g *graph.Graph, n *graph.Node, m Map) {
	set := func(dt tensor.DType) {
		for _, o := range n.Outputs {
			if o != "" {
				m[o] = dt
			}
		}
	}
	inDT := func(i int) tensor.DType {
		if i < len(n.Inputs) && n.Inputs[i] != "" {
			if dt, ok := m[n.Inputs[i]]; ok {
				return dt
			}
		}
		return tensor.Float32
	}
	switch n.OpType {
	case "Shape", "Size", "NonZero", "ArgMax", "ArgMin", "Range":
		set(tensor.Int64)
	case "Equal", "Greater", "GreaterOrEqual", "Less", "LessOrEqual",
		"Not", "And", "Or", "Xor", "IsNaN", "IsInf":
		set(tensor.Bool)
	case "Cast":
		switch n.AttrString("to", "float32") {
		case "int64":
			set(tensor.Int64)
		case "bool":
			set(tensor.Bool)
		default:
			set(tensor.Float32)
		}
	case "Where":
		set(inDT(1))
	case "TopK":
		if len(n.Outputs) > 0 && n.Outputs[0] != "" {
			m[n.Outputs[0]] = inDT(0)
		}
		if len(n.Outputs) > 1 && n.Outputs[1] != "" {
			m[n.Outputs[1]] = tensor.Int64
		}
	case "Add", "Sub", "Mul", "Div", "Mod", "Min", "Max":
		if inDT(0) == tensor.Int64 && inDT(1) == tensor.Int64 {
			set(tensor.Int64)
		} else {
			set(tensor.Float32)
		}
	case "If":
		inferBranch(n.AttrGraph("then_branch"), n, 1, 0, m)
		inferBranch(n.AttrGraph("else_branch"), n, 1, 0, m)
	case "Loop":
		inferBranch(n.AttrGraph("body"), n, 2, 1, m)
	case "Switch", "Combine", "Identity", "Reshape", "Transpose", "Squeeze",
		"Unsqueeze", "Slice", "Concat", "Gather", "Expand", "Tile", "Flatten",
		"Split", "Dropout", "Pad":
		// Movement/routing ops preserve their data operand's type.
		set(inDT(0))
	default:
		set(tensor.Float32)
	}
}

// inferBranch types a subgraph body whose inputs bind the node's inputs
// starting at inOff (If skips the condition; Loop additionally gets the
// synthetic iteration counter and condition), then maps the body's
// outputs — from outOff on — onto the node's outputs.
func inferBranch(body *graph.Graph, n *graph.Node, inOff, outOff int, m Map) {
	if body == nil {
		return
	}
	sub := Map{}
	for i, bin := range body.Inputs {
		switch {
		case n.OpType == "Loop" && i == 0:
			sub[bin.Name] = tensor.Int64
		case n.OpType == "Loop" && i == 1:
			sub[bin.Name] = tensor.Bool
		default:
			j := i
			if n.OpType == "If" {
				j = i + inOff
			}
			if j < len(n.Inputs) && n.Inputs[j] != "" {
				if dt, ok := m[n.Inputs[j]]; ok {
					sub[bin.Name] = dt
					continue
				}
			}
			sub[bin.Name] = tensor.Float32
		}
	}
	infer(body, sub)
	for i, name := range n.Outputs {
		if name == "" || i+outOff >= len(body.Outputs) {
			continue
		}
		if dt, ok := sub[body.Outputs[i+outOff]]; ok {
			// An If output typed differently by the two branches keeps
			// the first (then) branch's claim unless widening to float.
			if prev, seen := m[name]; seen && prev != dt {
				m[name] = tensor.Float32
				continue
			}
			m[name] = dt
		}
	}
}
