package memplan

import "fmt"

// StepSpec describes one operator execution for liveness analysis:
// the intermediate values it produces (with byte sizes) and the value
// names it consumes.
type StepSpec struct {
	Produces []NamedSize
	Consumes []string
}

// NamedSize pairs a value name with its byte size.
type NamedSize struct {
	Name string
	Size int64
}

// FromSteps derives buffer lifetimes from an execution order. Values in
// keepAlive (graph outputs) stay live through the final step. Values that
// are produced but never consumed die at their producing step.
func FromSteps(steps []StepSpec, keepAlive map[string]bool) *Program {
	birth := map[string]int{}
	death := map[string]int{}
	size := map[string]int64{}
	// alias maps an original value name to its current unique buffer name
	// (re-produced names — e.g. subgraph-local values executed twice —
	// become fresh buffers).
	alias := map[string]string{}
	gen := map[string]int{}
	var order []string
	for i, s := range steps {
		for _, p := range s.Produces {
			name := p.Name
			if _, seen := birth[alias[name]]; seen || alias[name] != "" {
				gen[name]++
				unique := fmt.Sprintf("%s#%d", name, gen[name])
				alias[name] = unique
				name = unique
			} else {
				alias[p.Name] = name
			}
			order = append(order, name)
			birth[name] = i
			death[name] = i
			size[name] = p.Size
		}
		for _, c := range s.Consumes {
			if u := alias[c]; u != "" {
				death[u] = i
			}
		}
	}
	// keepAlive refers to original names: translate through the alias.
	if len(keepAlive) > 0 {
		translated := map[string]bool{}
		for k := range keepAlive {
			if u := alias[k]; u != "" {
				translated[u] = true
			} else {
				translated[k] = true
			}
		}
		keepAlive = translated
	}
	p := &Program{Steps: len(steps)}
	for _, name := range order {
		d := death[name]
		if keepAlive[name] {
			d = len(steps) - 1
		}
		p.Bufs = append(p.Bufs, Buf{Name: name, Size: size[name], Birth: birth[name], Death: d})
	}
	return p
}
