package memplan

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chainProgram models a linear chain: each value born at step i dies at
// step i+1 (consumed by the next op).
func chainProgram(n int, size int64) *Program {
	p := &Program{Steps: n}
	for i := 0; i < n; i++ {
		death := i + 1
		if death >= n {
			death = n - 1
		}
		p.Bufs = append(p.Bufs, Buf{Name: name(i), Size: size, Birth: i, Death: death})
	}
	return p
}

func name(i int) string { return string(rune('a' + i)) }

func TestChainReusesMemory(t *testing.T) {
	p := chainProgram(6, 100)
	for _, plan := range []*Plan{PeakFirst(p), BestFit(p)} {
		if err := plan.Validate(p); err != nil {
			t.Fatalf("%s: %v", plan.Strategy, err)
		}
		// At most 2 chain values live at once -> arena ~200 not 600.
		if plan.ArenaSize > 200 {
			t.Errorf("%s arena = %d, want <= 200", plan.Strategy, plan.ArenaSize)
		}
	}
}

func TestPeakLiveLowerBound(t *testing.T) {
	p := chainProgram(6, 100)
	if got := p.PeakLive(); got != 200 {
		t.Errorf("peak live = %d", got)
	}
}

func TestFromSteps(t *testing.T) {
	steps := []StepSpec{
		{Produces: []NamedSize{{"a", 10}}, Consumes: []string{"x"}},
		{Produces: []NamedSize{{"b", 20}}, Consumes: []string{"a"}},
		{Produces: []NamedSize{{"c", 30}}, Consumes: []string{"b"}},
	}
	p := FromSteps(steps, map[string]bool{"c": true})
	if len(p.Bufs) != 3 {
		t.Fatalf("bufs = %d", len(p.Bufs))
	}
	if p.Bufs[0].Birth != 0 || p.Bufs[0].Death != 1 {
		t.Errorf("a lifetime = [%d,%d]", p.Bufs[0].Birth, p.Bufs[0].Death)
	}
	if p.Bufs[2].Death != 2 {
		t.Errorf("output c death = %d", p.Bufs[2].Death)
	}
}

func TestOptimalSmall(t *testing.T) {
	// Diamond: a feeds b and c (parallel), both feed d.
	p := &Program{Steps: 4, Bufs: []Buf{
		{Name: "a", Size: 100, Birth: 0, Death: 2},
		{Name: "b", Size: 50, Birth: 1, Death: 3},
		{Name: "c", Size: 50, Birth: 2, Death: 3},
		{Name: "d", Size: 100, Birth: 3, Death: 3},
	}}
	opt, err := Optimal(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(p); err != nil {
		t.Fatal(err)
	}
	if opt.ArenaSize != p.PeakLive() {
		t.Errorf("optimal = %d, lower bound = %d", opt.ArenaSize, p.PeakLive())
	}
}

func TestOptimalRefusesLarge(t *testing.T) {
	p := chainProgram(15, 10)
	if _, err := Optimal(p, 9); err == nil {
		t.Error("expected cap error")
	}
}

// The paper's §4.4.1 finding: peak-first is close to optimal, best-fit
// can be worse. Verify orderings on randomized programs: optimal <=
// peak-first and all plans valid.
func TestQuickPlannersValidAndOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		n := r.Intn(6) + 3
		p := &Program{Steps: n + 2}
		for i := 0; i < n; i++ {
			birth := r.Intn(n)
			death := birth + r.Intn(n+2-birth)
			p.Bufs = append(p.Bufs, Buf{
				Name:  name(i),
				Size:  int64(r.Intn(100)+1) * 8,
				Birth: birth,
				Death: death,
			})
		}
		pf := PeakFirst(p)
		bf := BestFit(p)
		opt, err := Optimal(p, 9)
		if err != nil {
			return false
		}
		if pf.Validate(p) != nil || bf.Validate(p) != nil || opt.Validate(p) != nil {
			return false
		}
		if opt.ArenaSize > pf.ArenaSize || opt.ArenaSize > bf.ArenaSize {
			return false
		}
		return opt.ArenaSize >= p.PeakLive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A program shape where best-fit's small-slot preference fragments the
// arena but peak-first packs the peak tightly.
func TestPeakFirstBeatsBestFitOnPeakHeavyProgram(t *testing.T) {
	p := &Program{Steps: 6, Bufs: []Buf{
		{Name: "s1", Size: 32, Birth: 0, Death: 1},
		{Name: "s2", Size: 32, Birth: 1, Death: 2},
		{Name: "big1", Size: 100, Birth: 2, Death: 3}, // peak pair
		{Name: "big2", Size: 100, Birth: 3, Death: 4},
		{Name: "s3", Size: 32, Birth: 4, Death: 5},
	}}
	pf := PeakFirst(p)
	bf := BestFit(p)
	if err := pf.Validate(p); err != nil {
		t.Fatal(err)
	}
	if err := bf.Validate(p); err != nil {
		t.Fatal(err)
	}
	if pf.ArenaSize > bf.ArenaSize {
		t.Errorf("peak-first %d > best-fit %d", pf.ArenaSize, bf.ArenaSize)
	}
	if pf.ArenaSize != p.PeakLive() {
		t.Errorf("peak-first %d != lower bound %d", pf.ArenaSize, p.PeakLive())
	}
}

func TestEmptyProgram(t *testing.T) {
	p := &Program{Steps: 0}
	if plan := PeakFirst(p); plan.ArenaSize != 0 {
		t.Error("empty arena should be 0")
	}
	if plan, err := Optimal(p, 0); err != nil || plan.ArenaSize != 0 {
		t.Error("optimal empty")
	}
}

// The safety error must name the exact offending pair and the step range
// over which the two buffers are simultaneously live — "offset conflict"
// alone is not actionable in a diagnostic report.
func TestValidateReportsOverlappingPair(t *testing.T) {
	p := &Program{Steps: 4, Bufs: []Buf{
		{Name: "early", Size: 64, Birth: 0, Death: 0},
		{Name: "left", Size: 64, Birth: 1, Death: 3},
		{Name: "right", Size: 64, Birth: 2, Death: 3},
	}}
	// Deliberately corrupt plan: left and right share offset 0.
	pl := &Plan{Offsets: map[string]int64{"early": 0, "left": 0, "right": 32}, ArenaSize: 128}
	err := pl.Validate(p)
	if err == nil {
		t.Fatal("overlapping plan validated")
	}
	var oe *OverlapError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverlapError, got %T: %v", err, err)
	}
	if oe.AName != "left" || oe.BName != "right" {
		t.Errorf("pair = (%s, %s), want (left, right)", oe.AName, oe.BName)
	}
	if oe.FromStep != 2 || oe.ToStep != 3 {
		t.Errorf("overlap steps = %d..%d, want 2..3", oe.FromStep, oe.ToStep)
	}
	for _, want := range []string{"left", "right", "steps 2..3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
}
