package memplan

import "testing"

func waveProg() *Program {
	return &Program{Steps: 4, Bufs: []Buf{
		{Name: "a", Size: 16, Birth: 0, Death: 1},
		{Name: "b", Size: 16, Birth: 1, Death: 2},
		{Name: "c", Size: 8, Birth: 2, Death: 3},
	}}
}

func TestWidenWavesGrowsToWaveBounds(t *testing.T) {
	p := waveProg()
	// Waves: [0,2) and [2,4). Buffer "b" is born in wave 0 and dies in
	// wave 1, so it must span the whole program after widening.
	w, err := WidenWaves(p, [][2]int{{0, 2}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := []Buf{
		{Name: "a", Size: 16, Birth: 0, Death: 1},
		{Name: "b", Size: 16, Birth: 0, Death: 3},
		{Name: "c", Size: 8, Birth: 2, Death: 3},
	}
	for i, b := range w.Bufs {
		if b != want[i] {
			t.Fatalf("buf %d = %+v, want %+v", i, b, want[i])
		}
	}
	if err := Covers(w, p); err != nil {
		t.Fatalf("widened program must cover the base: %v", err)
	}
}

func TestWidenWavesTrivialPartitionIsIdentity(t *testing.T) {
	p := waveProg()
	w, err := WidenWaves(p, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.Bufs {
		if b != p.Bufs[i] {
			t.Fatalf("width-1 waves changed buf %d: %+v != %+v", i, b, p.Bufs[i])
		}
	}
}

func TestWidenWavesRejectsBadPartition(t *testing.T) {
	p := waveProg()
	for _, waves := range [][][2]int{
		{{0, 2}},                 // does not cover all steps
		{{0, 2}, {3, 4}},         // gap
		{{0, 2}, {1, 4}},         // overlap
		{{0, 0}, {0, 4}},         // empty wave
		{{0, 2}, {2, 4}, {4, 5}}, // past the end
	} {
		if _, err := WidenWaves(p, waves); err == nil {
			t.Fatalf("bad partition %v accepted", waves)
		}
	}
}

func TestWidenedPlanSeparatesSameWaveBuffers(t *testing.T) {
	// Two buffers that are sequentially disjoint (a dies at step 0,
	// b born at step 1) but land in the same wave: the sequential plan
	// may stack them at one offset; the widened plan must not.
	p := &Program{Steps: 2, Bufs: []Buf{
		{Name: "a", Size: 32, Birth: 0, Death: 0},
		{Name: "b", Size: 32, Birth: 1, Death: 1},
	}}
	w, err := WidenWaves(p, [][2]int{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	pl := PeakFirst(w)
	if err := pl.Validate(w); err != nil {
		t.Fatal(err)
	}
	if pl.Offsets["a"] == pl.Offsets["b"] {
		t.Fatal("same-wave buffers share an offset in the widened plan")
	}
	if pl.ArenaSize < 64 {
		t.Fatalf("widened arena %d cannot hold both concurrent buffers", pl.ArenaSize)
	}
}

func TestCoversDetectsShrunkLifetime(t *testing.T) {
	base := waveProg()
	bad := waveProg()
	bad.Bufs[1].Death = 1 // shrunk vs base's 2
	if err := Covers(bad, base); err == nil {
		t.Fatal("shrunk lifetime not detected")
	}
}
