package memplan

import "fmt"

// WidenWaves widens every buffer's live interval from step granularity
// to wavefront granularity: a buffer born at step b and dying at step d
// becomes live from the first step of b's wave through the last step of
// d's wave. Under wavefront-parallel execution every operator of a wave
// may run (and write its outputs / read its inputs) concurrently, so
// offsets planned against the widened program are provably
// non-overlapping for any interleaving of same-wave operators — the
// per-step interval claim "this buffer is dead before step s" is only
// sound at wave boundaries, where the executor places a barrier.
//
// waves are half-open [start,end) step ranges that must partition
// [0,Steps) contiguously in ascending order.
func WidenWaves(p *Program, waves [][2]int) (*Program, error) {
	if err := checkWaves(waves, p.Steps); err != nil {
		return nil, err
	}
	// waveOf[s] = index of the wave containing step s.
	waveOf := make([]int, p.Steps)
	for w, r := range waves {
		for s := r[0]; s < r[1]; s++ {
			waveOf[s] = w
		}
	}
	out := &Program{Steps: p.Steps, Bufs: make([]Buf, len(p.Bufs))}
	for i, b := range p.Bufs {
		if b.Birth < 0 || b.Death >= p.Steps || b.Birth > b.Death {
			return nil, fmt.Errorf("memplan: buffer %q has invalid interval [%d,%d] over %d steps", b.Name, b.Birth, b.Death, p.Steps)
		}
		wb := waves[waveOf[b.Birth]]
		wd := waves[waveOf[b.Death]]
		out.Bufs[i] = Buf{Name: b.Name, Size: b.Size, Birth: wb[0], Death: wd[1] - 1}
	}
	return out, nil
}

// checkWaves verifies waves partition [0,steps) contiguously.
func checkWaves(waves [][2]int, steps int) error {
	next := 0
	for i, r := range waves {
		if r[0] != next || r[1] <= r[0] {
			return fmt.Errorf("memplan: wave %d range [%d,%d) does not continue partition at step %d", i, r[0], r[1], next)
		}
		next = r[1]
	}
	if next != steps {
		return fmt.Errorf("memplan: waves cover %d of %d steps", next, steps)
	}
	return nil
}

// Covers reports whether plan intervals in `widened` contain the
// corresponding intervals of `base` (same buffer order). Used by the
// static verifier to certify that widening only ever grows lifetimes.
func Covers(widened, base *Program) error {
	if len(widened.Bufs) != len(base.Bufs) {
		return fmt.Errorf("memplan: widened program has %d buffers, base has %d", len(widened.Bufs), len(base.Bufs))
	}
	for i, w := range widened.Bufs {
		b := base.Bufs[i]
		if w.Name != b.Name || w.Size != b.Size {
			return fmt.Errorf("memplan: buffer %d mismatch: %q/%d vs %q/%d", i, w.Name, w.Size, b.Name, b.Size)
		}
		if w.Birth > b.Birth || w.Death < b.Death {
			return fmt.Errorf("memplan: widened interval [%d,%d] of %q does not cover base [%d,%d]", w.Birth, w.Death, w.Name, b.Birth, b.Death)
		}
	}
	return nil
}
