// Package memplan implements SoD²'s memory allocation planning
// (paper §4.4.1): given an operator execution order and the byte sizes of
// intermediate tensors, it assigns every tensor an offset in one linear
// arena so that concurrently-live tensors never overlap. Three planners
// are provided: SoD²'s peak-first bidirectional greedy, the MNN-style
// best-fit greedy baseline, and an exhaustive optimal search for small
// programs (used by the 1.05×-vs-1.16×-of-optimal ablation).
package memplan

import (
	"fmt"
	"sort"
)

// Buf is one intermediate tensor to be placed in the arena.
type Buf struct {
	Name string
	Size int64
	// Birth and Death delimit the buffer's live interval in step indices
	// (inclusive): it must be addressable from Birth through Death.
	Birth, Death int
}

// Program is the sequence of buffers in allocation order with lifetimes
// derived from an execution order.
type Program struct {
	Bufs  []Buf
	Steps int
}

// Plan maps each buffer to its arena offset.
type Plan struct {
	Offsets   map[string]int64
	ArenaSize int64
	Strategy  string
}

// overlapLife reports whether two buffers are ever live simultaneously.
func overlapLife(a, b Buf) bool {
	return a.Birth <= b.Death && b.Birth <= a.Death
}

// PeakLive returns the maximum sum of sizes of simultaneously-live
// buffers — the information-theoretic lower bound on the arena size.
func (p *Program) PeakLive() int64 {
	var peak int64
	for s := 0; s < p.Steps; s++ {
		var live int64
		for _, b := range p.Bufs {
			if b.Birth <= s && s <= b.Death {
				live += b.Size
			}
		}
		if live > peak {
			peak = live
		}
	}
	return peak
}

// peakStep returns the step index with maximum live bytes.
func (p *Program) peakStep() int {
	var peak int64
	best := 0
	for s := 0; s < p.Steps; s++ {
		var live int64
		for _, b := range p.Bufs {
			if b.Birth <= s && s <= b.Death {
				live += b.Size
			}
		}
		if live > peak {
			peak, best = live, s
		}
	}
	return best
}

// placeFirstFit returns the lowest offset where buf fits among the
// already-placed conflicting buffers.
func placeFirstFit(buf Buf, placed []Buf, offsets map[string]int64) int64 {
	type iv struct{ lo, hi int64 }
	var conflicts []iv
	for _, o := range placed {
		if overlapLife(buf, o) {
			off := offsets[o.Name]
			conflicts = append(conflicts, iv{off, off + o.Size})
		}
	}
	sort.Slice(conflicts, func(i, j int) bool { return conflicts[i].lo < conflicts[j].lo })
	cursor := int64(0)
	for _, c := range conflicts {
		if c.lo-cursor >= buf.Size {
			return cursor
		}
		if c.hi > cursor {
			cursor = c.hi
		}
	}
	return cursor
}

// placeBestFit returns the offset of the smallest gap that fits buf
// among conflicting placed buffers (MNN's "minimal memory slot currently
// available" policy), or the end of the occupied range.
func placeBestFit(buf Buf, placed []Buf, offsets map[string]int64) int64 {
	type iv struct{ lo, hi int64 }
	var conflicts []iv
	for _, o := range placed {
		if overlapLife(buf, o) {
			off := offsets[o.Name]
			conflicts = append(conflicts, iv{off, off + o.Size})
		}
	}
	sort.Slice(conflicts, func(i, j int) bool { return conflicts[i].lo < conflicts[j].lo })
	bestOff := int64(-1)
	bestGap := int64(-1)
	cursor := int64(0)
	for _, c := range conflicts {
		gap := c.lo - cursor
		if gap >= buf.Size && (bestGap == -1 || gap < bestGap) {
			bestOff, bestGap = cursor, gap
		}
		if c.hi > cursor {
			cursor = c.hi
		}
	}
	if bestOff >= 0 {
		return bestOff
	}
	return cursor
}

func finish(p *Program, offsets map[string]int64, strategy string) *Plan {
	var arena int64
	for _, b := range p.Bufs {
		if end := offsets[b.Name] + b.Size; end > arena {
			arena = end
		}
	}
	return &Plan{Offsets: offsets, ArenaSize: arena, Strategy: strategy}
}

// BestFit is the baseline greedy planner: buffers are placed in
// allocation (birth) order into the smallest currently-available slot.
func BestFit(p *Program) *Plan {
	bufs := append([]Buf(nil), p.Bufs...)
	sort.SliceStable(bufs, func(i, j int) bool { return bufs[i].Birth < bufs[j].Birth })
	offsets := map[string]int64{}
	var placed []Buf
	for _, b := range bufs {
		offsets[b.Name] = placeBestFit(b, placed, offsets)
		placed = append(placed, b)
	}
	return finish(p, offsets, "best-fit")
}

// PeakFirst is SoD²'s planner: placement starts from the peak-memory
// step — those buffers are packed contiguously from offset 0 — and then
// proceeds outward in both directions (paper insight: memory requirement
// decreases monotonically away from the peak for most sub-graphs), using
// first-fit against already-placed buffers.
func PeakFirst(p *Program) *Plan {
	peak := p.peakStep()
	// Order: buffers live at the peak (largest first), then the rest by
	// distance of their lifetime from the peak step.
	bufs := append([]Buf(nil), p.Bufs...)
	dist := func(b Buf) int {
		if b.Birth <= peak && peak <= b.Death {
			return 0
		}
		if b.Death < peak {
			return peak - b.Death
		}
		return b.Birth - peak
	}
	sort.SliceStable(bufs, func(i, j int) bool {
		di, dj := dist(bufs[i]), dist(bufs[j])
		if di != dj {
			return di < dj
		}
		if bufs[i].Size != bufs[j].Size {
			return bufs[i].Size > bufs[j].Size
		}
		return bufs[i].Name < bufs[j].Name
	})
	offsets := map[string]int64{}
	var placed []Buf
	for _, b := range bufs {
		offsets[b.Name] = placeFirstFit(b, placed, offsets)
		placed = append(placed, b)
	}
	return finish(p, offsets, "peak-first")
}

// Optimal exhaustively searches placement orders (first-fit per order)
// and returns the minimum-arena plan. It is exponential and refuses
// programs with more than maxN buffers.
func Optimal(p *Program, maxN int) (*Plan, error) {
	if maxN <= 0 {
		maxN = 9
	}
	n := len(p.Bufs)
	if n > maxN {
		return nil, fmt.Errorf("memplan: %d buffers exceeds exhaustive cap %d", n, maxN)
	}
	if n == 0 {
		return &Plan{Offsets: map[string]int64{}, Strategy: "optimal"}, nil
	}
	lower := p.PeakLive()
	var best *Plan
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if best != nil && best.ArenaSize == lower {
			return // provably optimal already
		}
		if k == n {
			offsets := map[string]int64{}
			var placed []Buf
			for _, idx := range perm {
				b := p.Bufs[idx]
				offsets[b.Name] = placeFirstFit(b, placed, offsets)
				placed = append(placed, b)
			}
			plan := finish(p, offsets, "optimal")
			if best == nil || plan.ArenaSize < best.ArenaSize {
				best = plan
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, nil
}

// OverlapError identifies the exact pair of buffers whose arena slots
// collide while both are live: the buffer names, their byte ranges, and
// the step range over which their lifetimes intersect.
type OverlapError struct {
	AName, BName     string
	AOff, BOff       int64
	ASize, BSize     int64
	FromStep, ToStep int
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("memplan: %s [%d,%d) overlaps %s [%d,%d) while both live (steps %d..%d)",
		e.AName, e.AOff, e.AOff+e.ASize, e.BName, e.BOff, e.BOff+e.BSize, e.FromStep, e.ToStep)
}

// Validate checks that no two concurrently-live buffers overlap in the
// arena — the safety invariant of any plan. A violation comes back as an
// *OverlapError naming the offending pair and the steps they collide on.
func (pl *Plan) Validate(p *Program) error {
	for i := 0; i < len(p.Bufs); i++ {
		for j := i + 1; j < len(p.Bufs); j++ {
			a, b := p.Bufs[i], p.Bufs[j]
			if !overlapLife(a, b) {
				continue
			}
			ao, bo := pl.Offsets[a.Name], pl.Offsets[b.Name]
			if ao < bo+b.Size && bo < ao+a.Size {
				from, to := a.Birth, a.Death
				if b.Birth > from {
					from = b.Birth
				}
				if b.Death < to {
					to = b.Death
				}
				return &OverlapError{
					AName: a.Name, BName: b.Name,
					AOff: ao, BOff: bo,
					ASize: a.Size, BSize: b.Size,
					FromStep: from, ToStep: to,
				}
			}
		}
	}
	for _, b := range p.Bufs {
		if _, ok := pl.Offsets[b.Name]; !ok {
			return fmt.Errorf("memplan: %s not placed", b.Name)
		}
	}
	return nil
}
