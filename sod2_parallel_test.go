// Wavefront-parallel serving: bit-identical-output suite over all 10
// evaluation models (run it with -race; the wave executor and the
// budgeted kernels must be clean), chaos containment, and the
// BenchmarkParallelExec worker sweep EXPERIMENTS.md records.
package sod2

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/tensor"
)

// TestParallelExecBitIdentical runs every model sequentially and
// wavefront-parallel on the same inputs and requires bit-identical
// outputs — the determinism contract of internal/exec/parallel.go.
func TestParallelExecBitIdentical(t *testing.T) {
	for _, b := range Models() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, err := Compile(b)
			if err != nil {
				t.Fatal(err)
			}
			inputs := b.Inputs(tensor.NewRNG(11), b.MinSize, 0.5)
			seqOut, seqRep, err := c.InferGuarded(inputs, GuardOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if seqRep.Wavefronts != 0 {
				t.Fatalf("sequential run reported %d wavefronts", seqRep.Wavefronts)
			}
			parOut, parRep, err := c.InferGuarded(inputs, GuardOptions{Parallel: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if parRep.Wavefronts == 0 {
				t.Fatalf("parallel run fell back to sequential (tier %v, degradations %v)",
					parRep.FallbackTier, parRep.Degradations)
			}
			if parRep.ParallelWorkers != 4 {
				t.Fatalf("ParallelWorkers = %d, want 4", parRep.ParallelWorkers)
			}
			if len(parOut) != len(seqOut) {
				t.Fatalf("outputs: %d parallel vs %d sequential", len(parOut), len(seqOut))
			}
			for name, want := range seqOut {
				got := parOut[name]
				if got == nil {
					t.Fatalf("output %q missing from parallel run", name)
				}
				if len(got.F) != len(want.F) {
					t.Fatalf("output %q: %d floats parallel vs %d sequential", name, len(got.F), len(want.F))
				}
				for i := range want.F {
					if got.F[i] != want.F[i] {
						t.Fatalf("output %q not bit-identical at element %d: %v != %v",
							name, i, got.F[i], want.F[i])
					}
				}
			}
		})
	}
}

// TestParallelChaosPanicContained injects a panic into one wavefront
// worker mid-model: the failure must surface as a typed *guard.OpError
// naming the faulting node, the worker pool must not wedge or leak, and
// the very next parallel request on the same Compiled must succeed.
func TestParallelChaosPanicContained(t *testing.T) {
	b, err := BuildModel("CodeBERT")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	inputs := b.Inputs(tensor.NewRNG(5), b.MinSize, 0.5)

	// Find a node that lives in a wave wider than 1, so the panic fires
	// on a pool worker rather than the inline solo path.
	var victim string
	for _, wave := range c.inner.WavePlan.Waves {
		if len(wave) > 1 {
			victim = wave[0].Name
			break
		}
	}
	if victim == "" {
		t.Fatal("model has no wave wider than 1")
	}
	hooks := &exec.Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
		if n.Name == victim {
			panic("chaos: injected wavefront worker fault")
		}
		return nil
	}}
	_, _, err = c.InferGuarded(inputs, GuardOptions{Parallel: true, Workers: 4, Hooks: hooks})
	var oe *guard.OpError
	if !errors.As(err, &oe) {
		t.Fatalf("want *guard.OpError, got %T: %v", err, err)
	}
	if oe.Node != victim || !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("panic not attributed to %s: %v", victim, err)
	}

	// The pool must have drained cleanly: the same Compiled serves the
	// next parallel request without hooks.
	out, rep, err := c.InferGuarded(inputs, GuardOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatalf("parallel request after contained panic failed: %v", err)
	}
	if rep.Wavefronts == 0 || len(out) == 0 {
		t.Fatalf("recovery request fell back: wavefronts=%d outputs=%d", rep.Wavefronts, len(out))
	}
}

// BenchmarkParallelExec sweeps the wavefront worker pool over three
// multi-branch models. Wall time is the hardware measurement; the
// modeled-speedup metric is the cost model's sequential-vs-makespan
// ratio (TraceCost / TraceCostParallel), which is the meaningful number
// on hosts without spare cores (see EXPERIMENTS.md).
func BenchmarkParallelExec(b *testing.B) {
	for _, name := range []string{"CodeBERT", "ConvNet-AIG", "BlockDrop"} {
		mb, err := BuildModel(name)
		if err != nil {
			b.Fatal(err)
		}
		c, err := Compile(mb)
		if err != nil {
			b.Fatal(err)
		}
		inputs := mb.Inputs(tensor.NewRNG(17), mb.MinSize, 0.5)
		var seqLatency float64
		for _, workers := range []int{1, 2, 4, 8} {
			opts := GuardOptions{}
			if workers > 1 {
				opts = GuardOptions{Parallel: true, Workers: workers}
			}
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				var rep Report
				for i := 0; i < b.N; i++ {
					var err error
					_, rep, err = c.InferGuarded(inputs, opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				if workers == 1 {
					seqLatency = rep.LatencyMS
				} else if rep.LatencyMS > 0 && seqLatency > 0 {
					b.ReportMetric(seqLatency/rep.LatencyMS, "modeled-speedup")
				}
			})
		}
	}
}
