package sod2

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/tensor"
)

func TestFacadePipelineOnCodeBERT(t *testing.T) {
	b, err := BuildModel("CodeBERT")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph() == nil || c.Analysis() == nil || c.Fusion() == nil || c.Execution() == nil {
		t.Fatal("compiled artifacts missing")
	}
	s := NewSample(b, 64, 0.5, 7)
	out, rep, err := c.Infer(s.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || rep.LatencyMS <= 0 || rep.PeakMemBytes <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFacadeHandBuiltGraph(t *testing.T) {
	g := NewGraph("mini")
	g.AddInput("x", tensor.Float32, lattice.FromInts(1, 4))
	g.Op("Relu", "r", []string{"x"}, []string{"y"}, nil)
	g.AddOutput("y")
	res, err := Analyze(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fuse(g, res.Infos)
	if fp == nil {
		t.Fatal("no fusion plan")
	}
	if _, err := PlanExecution(g, res.Infos, fp); err != nil {
		t.Fatal(err)
	}
	out, err := RunGraph(g, map[string]*Tensor{
		"x": tensor.FromFloats([]int64{1, 4}, []float32{-1, 0, 1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"].F[0] != 0 || out["y"].F[3] != 2 {
		t.Errorf("y = %v", out["y"].F)
	}
}

func TestFacadeModelsAndEngines(t *testing.T) {
	if len(Models()) != 10 {
		t.Errorf("models = %d", len(Models()))
	}
	if _, err := BuildModel("NoSuchModel"); err == nil {
		t.Error("expected error")
	}
	engs := Engines()
	for _, name := range []string{"SoD2", "ORT", "MNN", "TVM-N", "TFLite"} {
		if engs[name] == nil {
			t.Errorf("engine %s missing", name)
		}
	}
}

func TestFacadeDeviceProfiles(t *testing.T) {
	if SD888CPU.GFlops <= SD835CPU.GFlops {
		t.Error("sd888 should outclass sd835")
	}
	if !SD888GPU.IsGPU || SD888CPU.IsGPU {
		t.Error("gpu flags")
	}
}

func TestFacadeInferWithArena(t *testing.T) {
	b, err := BuildModel("YOLO-V6")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSample(b, 256, 0.5, 61)
	heap, _, err := c.Infer(s.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	out, arena, err := c.InferWithArena(s.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if arena.Size <= 0 {
		t.Fatal("empty arena")
	}
	for name, ref := range heap {
		got := out[name]
		if got == nil || !tensor.AllClose(ref, got, 1e-5) {
			t.Fatalf("arena output %s differs", name)
		}
	}
}
