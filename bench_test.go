// Benchmarks: one testing.B target per paper table/figure (each drives
// the same experiment harness `cmd/sod2bench` runs, with a small sample
// count so `go test -bench=.` stays tractable), plus wall-clock kernel
// and ablation benchmarks for the design choices DESIGN.md calls out.
package sod2

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/frameworks"
	"repro/internal/fusion"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/memplan"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/rdp"
	"repro/internal/symbolic"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(bench.Options{Samples: 2, Seed: 7, Out: io.Discard})
		if err := s.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Tables.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// Figures.
func BenchmarkFig5(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkMemPlanAblation(b *testing.B) { benchExperiment(b, "memopt") }

// ---- Wall-clock kernel benchmarks -------------------------------------

// BenchmarkGemmVariants measures the real speed of each generated GEMM
// code version (the MVC substrate, §4.4.2) on its own regime.
func BenchmarkGemmVariants(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"regular_128", 128, 128, 128},
		{"fat_512x32", 512, 64, 32},
		{"skinny_32x512", 32, 64, 512},
	}
	for _, sh := range shapes {
		rng := tensor.NewRNG(3)
		a := tensor.RandomFloats(rng, 1, sh.m, sh.k)
		bb := tensor.RandomFloats(rng, 1, sh.k, sh.n)
		c := make([]float32, sh.m*sh.n)
		for _, v := range kernels.GemmVariants() {
			b.Run(fmt.Sprintf("%s/%s", sh.name, v), func(b *testing.B) {
				b.SetBytes((sh.m*sh.k + sh.k*sh.n + sh.m*sh.n) * 4)
				for i := 0; i < b.N; i++ {
					for j := range c {
						c[j] = 0
					}
					kernels.Gemm(v, a.F, bb.F, sh.m, sh.k, sh.n, c)
				}
			})
		}
	}
}

// BenchmarkConvVariants compares the direct and im2col conv kernels.
func BenchmarkConvVariants(b *testing.B) {
	rng := tensor.NewRNG(5)
	x := tensor.RandomFloats(rng, 1, 1, 16, 56, 56)
	w := tensor.RandomFloats(rng, 1, 32, 16, 3, 3)
	for _, variant := range []int64{0, 1} { // direct, im2col
		name := "direct"
		if variant == 1 {
			name = "im2col"
		}
		b.Run(name, func(b *testing.B) {
			n := &graph.Node{Name: "c", OpType: "Conv", Outputs: []string{"y"},
				Attrs: map[string]graph.AttrValue{
					"pads":         graph.IntsAttr(1, 1, 1, 1),
					"conv_variant": graph.IntAttr(variant),
				}}
			for i := 0; i < b.N; i++ {
				if _, err := kernels.Run(n, []*tensor.Tensor{x, w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Compiler-stage benchmarks ----------------------------------------

// BenchmarkRDPAnalysis measures the analysis itself over every model.
func BenchmarkRDPAnalysis(b *testing.B) {
	for _, m := range models.All() {
		g := m.Build()
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rdp.Analyze(g, nil, rdp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRDPBackwardAblation compares convergence cost with and
// without backward transfer (design-choice ablation).
func BenchmarkRDPBackwardAblation(b *testing.B) {
	g, _ := models.Get("CodeBERT")
	built := g.Build()
	for _, disabled := range []bool{false, true} {
		name := "with-backward"
		if disabled {
			name = "forward-only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rdp.Analyze(built, nil, rdp.Options{DisableBackward: disabled}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSymbolicCanon measures the canonicalizing simplifier — the
// fusion hit-rate depends on it being cheap enough to run everywhere.
func BenchmarkSymbolicCanon(b *testing.B) {
	h := symbolic.NewSym("H")
	w := symbolic.NewSym("W")
	for i := 0; i < b.N; i++ {
		e := symbolic.Add(
			symbolic.Div(symbolic.Mul(h, w, symbolic.NewConst(4)), symbolic.NewConst(2)),
			symbolic.Mul(symbolic.NewConst(3), h),
			symbolic.Neg(h),
		)
		if _, err := e.Eval(symbolic.Env{"H": 32, "W": 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecPlanSearch compares the exhaustive subset-DP ordering
// search against the greedy heuristic on a planning-friendly graph.
func BenchmarkExecPlanSearch(b *testing.B) {
	m, _ := models.Get("CodeBERT")
	g := m.Build()
	res, err := rdp.Analyze(g, nil, rdp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{0, 14} {
		name := "greedy-only"
		if cap == 14 {
			name = "with-exhaustive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := plan.Options{ExhaustiveCap: 1}
				if cap > 0 {
					opts.ExhaustiveCap = cap
				}
				if _, err := plan.Build(g, res.Infos, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFusionModes measures SFusion vs RDP fusion planning cost.
func BenchmarkFusionModes(b *testing.B) {
	m, _ := models.Get("StableDiffusion")
	g := m.Build()
	res, err := rdp.Analyze(g, nil, rdp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []fusion.Mode{fusion.Static, fusion.RDP} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fusion.Fuse(g, res.Infos, mode)
			}
		})
	}
}

// BenchmarkMemoryPlanners measures the three offset planners on a real
// trace-derived program.
func BenchmarkMemoryPlanners(b *testing.B) {
	m, _ := models.Get("YOLO-V6")
	c, err := frameworks.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	s := workload.Fixed(m, 1, 320, 0.5, 3)[0]
	res, err := c.Execute(s, false, frameworks.OrderPlanned)
	if err != nil {
		b.Fatal(err)
	}
	prog := frameworks.TraceProgram(c.Graph, res.Trace, c.FusionRDP.Internal)
	b.Run("peak-first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memplan.PeakFirst(prog)
		}
	})
	b.Run("best-fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memplan.BestFit(prog)
		}
	})
}

// BenchmarkEndToEndInference measures the real executor (kernels + Go)
// per model at the minimum input size.
func BenchmarkEndToEndInference(b *testing.B) {
	for _, m := range models.All() {
		c, err := frameworks.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		s := workload.Fixed(m, 1, m.MinSize, 0.5, 3)[0]
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.ID = 0 // disable memoization: measure the real run
				if _, err := c.Execute(s, false, frameworks.OrderPlanned); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
