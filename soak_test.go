package sod2

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/resilience"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// soakStructured reports whether a phase-1 outcome is one the resilient
// session is contracted to produce under persistent faults: a contained
// kernel fault, a typed admission shed, or a context expiry — never an
// unstructured error (and never a panic; the harness would crash).
func soakStructured(err error) bool {
	var oe *guard.OpError
	return errors.As(err, &oe) || errors.Is(err, ErrOverloaded) || isCancellation(err)
}

// TestSoakSelfHealing drives concurrent traffic over the evaluation
// models with persistent fault injection, then stops the faults and
// asserts the serving layer heals itself:
//
//   - under faults, every request sheds or fails fast with a typed error
//     within the request deadline — no unbounded queueing, no hang;
//   - the circuit breaker trips, quarantining the plan (cached plans and
//     the region proof invalidated, re-verification in the background);
//   - after the faults stop, within a bounded number of requests the
//     health state returns to healthy, region-cache-hit serving resumes,
//     and outputs match the pre-fault reference;
//   - nothing leaks: no in-flight admissions, no reserved arena bytes,
//     no queued requests, no stray goroutines.
//
// CI runs it under -race; -short reduces the model and request counts.
func TestSoakSelfHealing(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	builders := Models()
	phase1PerWorker := 8
	if testing.Short() {
		builders = builders[:3]
		phase1PerWorker = 4
	}
	const workers = 8
	const healBudget = 100 // max phase-2 requests to reach healthy again

	for _, b := range builders {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, vrep, err := CompileVerified(b)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if !vrep.Mem.Proven {
				t.Fatalf("memory plan unproven (%s); soak assumes region serving", vrep.Mem.Reason)
			}

			// Persistent fault: while enabled, every kernel launch fails.
			var faultsOn atomic.Bool
			hooks := &exec.Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
				if faultsOn.Load() {
					return fmt.Errorf("%w: soak kernel fault at %s", faultinject.ErrInjected, n.Name)
				}
				return nil
			}}

			const timeout = 2 * time.Second
			sess := c.NewSession(SessionOptions{
				Hooks:          hooks,
				Admission:      AdmissionConfig{MaxConcurrent: 4, MaxQueue: 2},
				Retry:          RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond},
				Breaker:        BreakerConfig{TripThreshold: 3, RecoverSuccesses: 2, ProbationSuccesses: 3},
				RequestTimeout: timeout,
			})
			samples := workload.Fixed(b, 4, b.MinSize, 0.5, 42)

			// Phase 0: clean serving, region fast path on, and a reference
			// output to compare post-healing results against.
			refOut, rep, err := sess.InferSample(samples[0])
			if err != nil {
				t.Fatalf("clean request: %v", err)
			}
			if !rep.RegionCacheHit {
				t.Fatalf("clean request not served by the region plan: %+v", rep)
			}

			// Phase 1: persistent faults under concurrent traffic.
			faultsOn.Store(true)
			var wg sync.WaitGroup
			var worstLatency atomic.Int64
			errCh := make(chan error, workers*phase1PerWorker)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < phase1PerWorker; i++ {
						start := time.Now()
						_, _, err := sess.InferSample(samples[(w+i)%len(samples)])
						if d := int64(time.Since(start)); d > worstLatency.Load() {
							worstLatency.Store(d)
						}
						errCh <- err
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			var shed, faulted int
			for err := range errCh {
				switch {
				case err == nil:
					t.Fatal("request succeeded while every kernel launch faults")
				case !soakStructured(err):
					t.Fatalf("unstructured error under faults: %v", err)
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					faulted++
				}
			}
			if faulted == 0 {
				t.Fatal("no request reached execution; the fault phase proved nothing")
			}
			// Fail fast: the worst request (including its retry and
			// backoff) stayed within the deadline rather than hanging.
			if worst := time.Duration(worstLatency.Load()); worst > timeout {
				t.Errorf("worst request took %v, past the %v deadline", worst, timeout)
			}
			st := sess.Stats()
			if st.Breaker.Trips == 0 {
				t.Fatalf("sustained faults never tripped the breaker: %+v", st.Breaker)
			}
			if st.Health == resilience.Healthy {
				t.Fatalf("health still %v after %d faults", st.Health, st.Breaker.Faults)
			}
			if st.Admission.InFlight != 0 || st.Admission.Queued != 0 || st.Admission.ReservedBytes != 0 {
				t.Fatalf("admission leaked across phase 1: %+v", st.Admission)
			}

			// Phase 2: faults stop; the session must heal itself. Early
			// requests serve on the quarantined/probation dynamic tier,
			// the background re-verification restores the proof, and
			// within the heal budget planned region serving resumes.
			faultsOn.Store(false)
			healed := false
			sawQuarantineTier := false
			for i := 0; i < healBudget; i++ {
				out, rep, err := sess.InferSample(samples[0])
				if err != nil {
					t.Fatalf("post-fault request %d failed: %v", i, err)
				}
				for _, d := range rep.Degradations {
					if d.Kind == guard.KindQuarantine {
						sawQuarantineTier = true
					}
				}
				if sess.Health() == resilience.Healthy && rep.RegionCacheHit {
					for name, want := range refOut {
						if got := out[name]; got == nil || !tensor.AllClose(got, want, 1e-5) {
							t.Fatalf("healed output %q diverges from pre-fault reference", name)
						}
					}
					healed = true
					break
				}
			}
			if !healed {
				t.Fatalf("session did not heal within %d requests: health=%v stats=%+v",
					healBudget, sess.Health(), sess.Stats().Breaker)
			}
			if !sawQuarantineTier {
				t.Error("no post-fault request recorded quarantined (forced-dynamic) serving")
			}
			st = sess.Stats()
			if st.Breaker.ReverifyPass == 0 {
				t.Fatalf("healing without a passing re-verification: %+v", st.Breaker)
			}
			if st.Admission.InFlight != 0 || st.Admission.ReservedBytes != 0 {
				t.Fatalf("admission leaked: %+v", st.Admission)
			}
		})
	}

	// No goroutine leaks: background re-verifications and batch workers
	// must all have exited (allow scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: started with %d, ended with %d",
				baseGoroutines, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
