package sod2

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/resilience"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// stallFromHook counts kernel launches and stalls every launch at or
// past a movable threshold — the per-sample analogue of the
// fault-injection stall, used to make exactly one sample of a batch
// blow a deadline.
type stallFromHook struct {
	launches  atomic.Int64
	stallFrom atomic.Int64 // launch index the stall starts at; <0 = never
	delay     time.Duration
}

func (h *stallFromHook) hooks() *exec.Hooks {
	return &exec.Hooks{PreKernel: func(*graph.Node, []*tensor.Tensor) error {
		idx := h.launches.Add(1) - 1
		if from := h.stallFrom.Load(); from >= 0 && idx >= from {
			time.Sleep(h.delay)
		}
		return nil
	}}
}

// TestInferBatchCtxMixedDeadline pins the mixed-deadline contract of
// InferBatchCtx: when the batch context expires mid-batch, exactly the
// deadline-exceeding samples come back Cancelled — never as a model
// error — samples that finished in time keep their outputs, undispatched
// samples are marked without executing, and the admission ledger drains
// to zero.
func TestInferBatchCtxMixedDeadline(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	hook := &stallFromHook{delay: 25 * time.Millisecond}
	hook.stallFrom.Store(-1)
	sess := c.NewSession(SessionOptions{
		Workers: 1, // sequential dispatch: sample order is execution order
		Hooks:   hook.hooks(),
		Admission: resilience.AdmissionConfig{
			MaxConcurrent: 2, MaxQueue: 2, MemoryBudget: 1 << 30,
		},
	})
	defer sess.Close(context.Background())

	b, _ := BuildModel("CodeBERT")
	samples := []Sample{NewSample(b, 64, 0.5, 1), NewSample(b, 64, 0.5, 2), NewSample(b, 64, 0.5, 3)}

	// Warm-up measures L, the launches of one inference at this shape,
	// so the stall can be aimed at the batch's SECOND sample only.
	if _, _, err := sess.InferSample(samples[0]); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	perInfer := hook.launches.Load()
	if perInfer < 4 {
		t.Fatalf("model too small to aim a mid-batch stall (%d launches)", perInfer)
	}
	hook.stallFrom.Store(hook.launches.Load() + perInfer)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	results := sess.InferBatchCtx(ctx, samples)

	// Sample 0 ran un-stalled inside the deadline: full success.
	if results[0].Err != nil || results[0].Cancelled || len(results[0].Outputs) == 0 {
		t.Fatalf("in-time sample: %+v", results[0])
	}
	// Sample 1 hit the stall and must report ONLY the deadline — a
	// cancellation, never a model/plan error the breaker would count.
	r1 := results[1]
	if !r1.Cancelled || !errors.Is(r1.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline sample: Cancelled=%v Err=%v, want Cancelled deadline", r1.Cancelled, r1.Err)
	}
	var oe *guard.OpError
	var ce *guard.ContractError
	if errors.As(r1.Err, &oe) || errors.As(r1.Err, &ce) {
		t.Fatalf("deadline surfaced as a model error: %v", r1.Err)
	}
	// Sample 2 was never dispatched: cancelled without executing.
	r2 := results[2]
	if !r2.Cancelled || r2.Outputs != nil {
		t.Fatalf("undispatched sample: %+v", r2)
	}
	launchesAfter := hook.launches.Load()
	if launchesAfter >= hook.stallFrom.Load()+perInfer {
		t.Fatalf("undispatched sample executed anyway (%d launches)", launchesAfter)
	}

	st := sess.Stats()
	if st.Admission.InFlight != 0 || st.Admission.Queued != 0 || st.Admission.ReservedBytes != 0 {
		t.Fatalf("admission ledger leak after mixed-deadline batch: %+v", st.Admission)
	}
	if st.Breaker.Faults != 0 {
		t.Fatalf("deadline expiry counted as plan fault: %+v", st.Breaker)
	}
}

// TestInferBucketCtxSingleAdmission pins the amortization the batching
// server is built on: a bucket of N samples consumes exactly ONE
// admission (one slot, one arena reservation) and each member's outputs
// are bit-identical to a direct un-batched inference.
func TestInferBucketCtxSingleAdmission(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	sess := c.NewSession(SessionOptions{
		Admission: resilience.AdmissionConfig{
			MaxConcurrent: 1, MaxQueue: 0, MemoryBudget: 1 << 30,
		},
	})
	defer sess.Close(context.Background())

	b, _ := BuildModel("CodeBERT")
	samples := workload.Fixed(b, 3, 64, 0.5, 42)
	refs := make([]map[string]*Tensor, len(samples))
	for i, s := range samples {
		out, _, err := c.Infer(s.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = out
	}

	results := sess.InferBucketCtx(context.Background(), samples)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
		for name, ref := range refs[i] {
			got := r.Outputs[name]
			if got == nil {
				t.Fatalf("member %d: missing output %q", i, name)
			}
			for j := range ref.F {
				if got.F[j] != ref.F[j] {
					t.Fatalf("member %d output %q[%d]: %v != %v (must be bit-identical)",
						i, name, j, got.F[j], ref.F[j])
				}
			}
		}
	}

	st := sess.Stats()
	if st.Buckets != 1 || st.BucketMembers != uint64(len(samples)) {
		t.Fatalf("bucket stats = %d/%d, want 1/%d", st.Buckets, st.BucketMembers, len(samples))
	}
	if st.Admission.Admitted != 1 {
		t.Fatalf("bucket consumed %d admissions, want 1", st.Admission.Admitted)
	}
	if st.Admission.InFlight != 0 || st.Admission.ReservedBytes != 0 {
		t.Fatalf("admission leak after bucket: %+v", st.Admission)
	}
	if st.Requests != uint64(len(samples)) {
		t.Fatalf("requests = %d, want %d (every member counted)", st.Requests, len(samples))
	}
}

// TestInferBucketCtxShedTyped: a bucket that cannot be admitted sheds
// every member with the same typed overload error, not a cancellation.
func TestInferBucketCtxShedTyped(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	hook := &stallFromHook{delay: 200 * time.Millisecond}
	hook.stallFrom.Store(0) // stall immediately: holds the only slot
	sess := c.NewSession(SessionOptions{
		Hooks:     hook.hooks(),
		Admission: resilience.AdmissionConfig{MaxConcurrent: 1, MaxQueue: 0},
	})
	defer sess.Close(context.Background())

	b, _ := BuildModel("CodeBERT")
	sample := NewSample(b, 64, 0.5, 1)
	occupied := make(chan struct{})
	go func() {
		close(occupied)
		sess.InferSample(sample)
	}()
	<-occupied
	time.Sleep(50 * time.Millisecond) // let the stalled request take the slot

	results := sess.InferBucketCtx(context.Background(), []Sample{sample, sample})
	hook.stallFrom.Store(-1) // un-stall the occupant so Close drains fast
	for i, r := range results {
		if !errors.Is(r.Err, ErrOverloaded) {
			t.Fatalf("member %d: err = %v, want ErrOverloaded", i, r.Err)
		}
		if r.Cancelled {
			t.Fatalf("member %d: shed misreported as cancellation", i)
		}
	}
}

// TestInferBucketCtxClosed: a bucket against a closed session fails
// every member with ErrClosed.
func TestInferBucketCtxClosed(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	sess := c.NewSession(SessionOptions{})
	if err := sess.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	b, _ := BuildModel("CodeBERT")
	results := sess.InferBucketCtx(context.Background(), []Sample{NewSample(b, 64, 0.5, 1)})
	if !errors.Is(results[0].Err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", results[0].Err)
	}
}

// TestFamilyKeyRegionSharing pins what makes cross-request batching
// work: every input set binding inside the verified region shares ONE
// family key (different concrete shapes included), and inputs that
// cannot be bound are unbucketable.
func TestFamilyKeyRegionSharing(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	sess := c.NewSession(SessionOptions{})
	defer sess.Close(context.Background())

	b, _ := BuildModel("CodeBERT")
	samples := workload.Samples(b, 4, 7)
	key0, proven0 := sess.FamilyKey(samples[0].Inputs)
	if key0 == "" || !proven0 {
		t.Fatalf("in-region inputs: key=%q proven=%v, want region key", key0, proven0)
	}
	for _, s := range samples[1:] {
		key, proven := sess.FamilyKey(s.Inputs)
		if key != key0 || !proven {
			t.Fatalf("region key not shared across the family: %q/%v vs %q", key, proven, key0)
		}
	}
	if key, proven := sess.FamilyKey(map[string]*Tensor{}); key != "" || proven {
		t.Fatalf("unbindable inputs must be unbucketable, got %q/%v", key, proven)
	}
}
