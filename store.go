package sod2

import (
	"repro/internal/artifact"
	"repro/internal/frameworks"
)

// Root-facade surface of the compiled-artifact store and the
// multi-model fleet. The store persists everything the compiler and
// static verifier produced — plans, proofs, verdicts — keyed by
// (model hash, device profile, schema version); loads are untrusted
// until verify-on-load re-proves them, and any corruption quarantines
// the file and falls back to a cold compile.

type (
	// ArtifactStore is the crash-safe on-disk store of compiled
	// artifacts (see OpenStore).
	ArtifactStore = artifact.Store
	// ArtifactKey addresses one artifact: model hash + device profile
	// (the schema version is part of the file name).
	ArtifactKey = artifact.Key
	// StoreStats snapshots a store's save/load/corruption counters.
	StoreStats = artifact.StoreStats
	// CorruptError is the typed refusal of a stored artifact: torn
	// file, checksum or version mismatch, undecodable section, or a
	// failed verify-on-load proof. The bad file has already been
	// quarantined when one is returned.
	CorruptError = artifact.CorruptError
	// BootInfo describes how one model came up: warm from the store,
	// cold compile, or cold after a quarantined artifact.
	BootInfo = frameworks.BootInfo
	// Fleet serves many models from one process behind a shared
	// admission gate with per-model memory shares.
	Fleet = frameworks.Fleet
	// FleetConfig configures a fleet (device, store, shared admission,
	// per-model shares, guard options).
	FleetConfig = frameworks.FleetConfig
	// FleetStats snapshots the fleet's shared admission ledger.
	FleetStats = frameworks.FleetStats
	// CompileCounters snapshot process-wide boot behavior (full
	// compiles vs warm loads, plan searches, verifier runs).
	CompileCounters = frameworks.CompileCounters
)

var (
	// ErrArtifactNotFound reports a clean store miss (errors.Is).
	ErrArtifactNotFound = artifact.ErrNotFound
	// ErrUnknownModel reports a fleet request for an unserved model.
	ErrUnknownModel = frameworks.ErrUnknownModel
)

// OpenStore opens (creating if needed) an artifact store rooted at dir
// and sweeps stale temp files left by crashed writers.
func OpenStore(dir string) (*ArtifactStore, error) { return artifact.Open(dir) }

// CompileStored boots one model through the store: warm from a stored
// artifact when one exists and survives verify-on-load, cold compile +
// crash-safe save otherwise. Corrupt artifacts are quarantined and
// recorded in BootInfo.CorruptFallback; they never fail the boot. st
// may be nil (plain cold compile).
func CompileStored(b *ModelBuilder, st *ArtifactStore, device string) (*Compiled, *VerifyReport, BootInfo, error) {
	c, rep, info, err := frameworks.CompileWithStore(b, st, device)
	if err != nil {
		return nil, nil, info, err
	}
	return &Compiled{inner: c, eng: frameworks.NewSoD2(frameworks.FullSoD2())}, rep, info, nil
}

// CompileStoredSched is CompileStored with an explicit scheduling
// configuration for the cold-compile path (warm boots replay the
// frontier point persisted in the artifact instead).
func CompileStoredSched(b *ModelBuilder, st *ArtifactStore, device string, cfg SchedConfig) (*Compiled, *VerifyReport, BootInfo, error) {
	c, rep, info, err := frameworks.CompileWithStoreSched(b, st, device, cfg)
	if err != nil {
		return nil, nil, info, err
	}
	return &Compiled{inner: c, eng: frameworks.NewSoD2(frameworks.FullSoD2())}, rep, info, nil
}

// BootFleet compiles (or warm-boots) every builder into a serving
// fleet; see FleetConfig.
func BootFleet(builders []*ModelBuilder, cfg FleetConfig) (*Fleet, error) {
	return frameworks.BootFleet(builders, cfg)
}

// BootCounters snapshots the process-wide compile/boot counters.
func BootCounters() CompileCounters { return frameworks.Counters() }
