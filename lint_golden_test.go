package sod2

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frameworks"
	"repro/internal/models"
)

// -update rewrites the golden lint snapshots instead of diffing them:
//
//	go test -run TestLintGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden lint snapshots in testdata/lint/")

// TestLintGolden pins `sod2 lint` output for all 10 evaluation models
// against checked-in snapshots, so any verifier or lint regression — a
// lost proof, a new diagnostic, a changed region — is visible in review
// as a testdata diff.
func TestLintGolden(t *testing.T) {
	for _, b := range models.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, rep, err := frameworks.CompileVerified(b)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Format()
			path := filepath.Join("testdata", "lint", b.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (regenerate with `go test -run TestLintGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output changed (regenerate with -update if intended):\n%s", diffLines(string(want), got))
			}
		})
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		fmt.Fprintf(&b, "-%s\n+%s\n", wl, gl)
	}
	return b.String()
}
