package sod2

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frameworks"
	"repro/internal/models"
)

// -update rewrites the golden lint snapshots instead of diffing them:
//
//	go test -run TestLintGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden lint snapshots in testdata/lint/")

// TestLintGolden pins `sod2 lint` output for all 10 evaluation models —
// the human text format and the machine-readable JSON form — against
// checked-in snapshots, so any verifier or lint regression (a lost
// proof, a new diagnostic, a changed region, a rejected specialization
// certificate) is visible in review as a testdata diff.
func TestLintGolden(t *testing.T) {
	for _, b := range models.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, rep, err := frameworks.CompileVerified(b)
			if err != nil {
				t.Fatal(err)
			}
			jsonGot, err := rep.FormatJSON()
			if err != nil {
				t.Fatal(err)
			}
			for _, snap := range []struct{ got, path string }{
				{rep.Format(), filepath.Join("testdata", "lint", b.Name+".golden")},
				{jsonGot, filepath.Join("testdata", "lint", b.Name+".json.golden")},
			} {
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(snap.path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(snap.path, []byte(snap.got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(snap.path)
				if err != nil {
					t.Fatalf("missing golden snapshot (regenerate with `go test -run TestLintGolden -update`): %v", err)
				}
				if snap.got != string(want) {
					t.Errorf("lint output changed in %s (regenerate with -update if intended):\n%s",
						snap.path, diffLines(string(want), snap.got))
				}
			}
		})
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		fmt.Fprintf(&b, "-%s\n+%s\n", wl, gl)
	}
	return b.String()
}
