// Shape-sweep benchmark for the static plan verifier: a request stream
// cycling through many distinct input shapes, served either by the
// per-shape plan cache (every new shape pays contract + plan
// verification) or by the shape-family region proof (one symbolic
// verification serves every in-region shape). The custom metrics make
// the amortization visible: "verifications" counts shape checks
// actually performed, "shapes-per-verify" is distinct shapes served per
// verification — exactly 1 in per-shape mode, the whole sweep in region
// mode.
package sod2

import (
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/workload"
)

// BenchmarkShapeSweep serves 8 distinct in-region shapes round-robin.
func BenchmarkShapeSweep(b *testing.B) {
	const distinct = 8
	for _, name := range []string{"CodeBERT", "YOLO-V6", "SkipNet"} {
		m, ok := models.Get(name)
		if !ok {
			b.Fatalf("unknown model %q", name)
		}
		// distinct step-aligned sizes spanning the model's input range.
		span := (m.MaxSize - m.MinSize) / m.SizeStep
		pool := make([]Sample, 0, distinct)
		for i := 0; i < distinct; i++ {
			size := m.MinSize + (span*int64(i)/int64(distinct-1))*m.SizeStep
			pool = append(pool, workload.Fixed(m, 1, size, 0.5, 42)[0])
		}
		for _, mode := range []string{"per-shape", "region"} {
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				c, err := Compile(m)
				if err != nil {
					b.Fatal(err)
				}
				proofs := 0
				if mode == "region" {
					rep := c.Verify()
					if !rep.Mem.Proven {
						b.Fatalf("%s not proven: %s", name, rep.Mem.Reason)
					}
					proofs = 1
				}
				sess := c.NewSession(SessionOptions{})
				// Warm once so the loop measures steady-state serving; the
				// warmup's verifications are part of the accounting.
				for _, s := range pool {
					if _, _, err := sess.InferSample(s); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := sess.InferSample(pool[i%distinct]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := sess.Stats()
				verifications := float64(st.Cache.PlanMisses) + float64(proofs)
				b.ReportMetric(verifications, "verifications")
				b.ReportMetric(float64(st.Cache.RegionHits), "region-hits")
				b.ReportMetric(float64(distinct)/verifications, "shapes-per-verify")
			})
		}
	}
}
