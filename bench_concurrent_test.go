// Concurrent-serving benchmarks: throughput of the Session facade as
// the number of client goroutines grows. Two scenarios per model:
//
//   - distinct: every worker draws different samples from the model's
//     size range — measures plan-cache + trace-memo effectiveness and
//     multicore scaling (on a single-core host, wall-clock throughput
//     stays flat; the cache counters still prove the per-shape work
//     happens once).
//   - coalesced: all in-flight requests carry the same hot sample —
//     measures singleflight request coalescing, where G goroutines are
//     served by one execution (throughput scales with G even on one
//     core because G−1 requests piggyback).
package sod2

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/models"
	"repro/internal/workload"
)

var concurrentBenchModels = []string{"CodeBERT", "SkipNet", "YOLO-V6"}

// BenchmarkConcurrentInfer sweeps 1/2/4/8 client goroutines across three
// models. Metric of record: requests per second (b.N requests total per
// iteration loop). RunParallel distributes b.N requests over the
// goroutines, so reported ns/op is wall-clock per request.
func BenchmarkConcurrentInfer(b *testing.B) {
	for _, name := range concurrentBenchModels {
		m, ok := models.Get(name)
		if !ok {
			b.Fatalf("unknown model %q", name)
		}
		c, err := Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		pool := workload.Samples(m, 8, 42)
		// The hot request is the model's largest input: long enough that a
		// wave's followers reliably arrive while the leader still executes.
		hot := workload.Fixed(m, 1, m.MaxSize, 0.5, 42)[0]
		for _, scenario := range []string{"distinct", "coalesced"} {
			for _, gor := range []int{1, 2, 4, 8} {
				bname := fmt.Sprintf("%s/%s/goroutines=%d", name, scenario, gor)
				b.Run(bname, func(b *testing.B) {
					c.Invalidate()
					sess := c.NewSession(SessionOptions{Workers: gor})
					// Warm the per-shape caches once so the steady-state
					// serving path is what the loop measures.
					for _, s := range append(pool, hot) {
						if _, _, err := sess.InferSample(s); err != nil {
							b.Fatal(err)
						}
					}
					before := sess.Stats()
					b.ResetTimer()
					if scenario == "coalesced" {
						benchCoalesced(b, sess, hot, gor)
					} else {
						benchDistinct(b, sess, pool, gor)
					}
					b.StopTimer()
					st := sess.Stats()
					b.ReportMetric(float64(st.Cache.PlanHits-before.Cache.PlanHits), "plan-hits")
					b.ReportMetric(float64(st.Coalesced-before.Coalesced), "coalesced")
				})
			}
		}
	}
}

// benchDistinct spreads b.N requests over gor goroutines, each cycling
// through the sample pool from a different offset so concurrent workers
// exercise different shapes at any instant.
func benchDistinct(b *testing.B, sess *Session, pool []Sample, gor int) {
	var wg sync.WaitGroup
	per := b.N / gor
	for g := 0; g < gor; g++ {
		n := per
		if g == gor-1 {
			n = b.N - per*(gor-1)
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s := pool[(g+i)%len(pool)]
				if _, _, err := sess.InferSample(s); err != nil {
					b.Error(err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
}

// benchCoalesced issues b.N requests for one hot sample in waves of gor
// concurrent clients: each wave's requests race on the same sample ID,
// so singleflight serves the whole wave with (at best) one execution. A
// start barrier per wave makes sure the clients really are in flight
// together rather than trickling in after the leader finished.
func benchCoalesced(b *testing.B, sess *Session, hot Sample, gor int) {
	done := 0
	for done < b.N {
		wave := gor
		if b.N-done < wave {
			wave = b.N - done
		}
		start := make(chan struct{})
		var ready, wg sync.WaitGroup
		for g := 0; g < wave; g++ {
			ready.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ready.Done()
				<-start
				if _, _, err := sess.InferSample(hot); err != nil {
					b.Error(err)
				}
			}()
		}
		ready.Wait()
		close(start)
		wg.Wait()
		done += wave
	}
}
