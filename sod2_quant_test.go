package sod2

import (
	"testing"

	"repro/internal/tensor"
)

// TestQuantAllModelsServeInt8 is the end-to-end acceptance sweep: every
// evaluation model compiles with int8 weight storage, keeps exactly the
// static memory-proof status of its float32 compile (quantization is a
// storage change, never a plan change), and serves its smallest input
// within the accuracy-drift contract — the drift verification re-run is
// on, so a contract violation would degrade the tier and fail the test.
func TestQuantAllModelsServeInt8(t *testing.T) {
	for _, b := range Models() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			fc, frep, err := CompileVerified(b)
			if err != nil {
				t.Fatalf("f32 compile: %v", err)
			}
			qc, qrep, err := CompileVerifiedSched(b, SchedConfig{
				Quant: QuantConfig{Format: Int8},
			})
			if err != nil {
				t.Fatalf("int8 compile: %v", err)
			}
			if qrep.Mem.Proven != frep.Mem.Proven {
				t.Fatalf("memory proof changed under quantization: f32=%v int8=%v (%s)",
					frep.Mem.Proven, qrep.Mem.Proven, qrep.Mem.Reason)
			}
			q := qc.Quant()
			if q == nil {
				t.Fatal("quantized compile reports no quant pass")
			}
			t.Logf("quant: %d packed, %d skipped, bytes %d -> %d (ratio %.3f)",
				q.Tensors, q.Skipped, q.FloatBytes, q.QuantBytes, q.BytesRatio())
			if q.Tensors > 0 {
				if got := qc.WeightBytes(); got >= fc.WeightBytes() {
					t.Fatalf("quantized weights not smaller: %d >= %d", got, fc.WeightBytes())
				}
			}
			s := NewSample(b, b.MinSize, 0.5, 7)
			out, rep, err := qc.InferGuarded(s.Inputs, GuardOptions{VerifyDrift: true})
			if err != nil {
				t.Fatalf("int8 serve: %v", err)
			}
			if len(out) == 0 {
				t.Fatal("no outputs")
			}
			for _, d := range rep.Degradations {
				if d.To == TierFloat32 {
					t.Fatalf("clean int8 serve violated its drift contract: %+v", rep.Degradations)
				}
			}
		})
	}
}

// TestQuantLiveBytesHalved pins the memory win on the transformer
// models. Weight-only quantization leaves activations in float32, so
// the provable 0.5x bar applies to the weight-resident live bytes —
// the fixed share of serving memory that the admission ledger charges
// for the model itself; total live bytes (weights + the planned
// activation arena at the smallest input) must still strictly shrink.
func TestQuantLiveBytesHalved(t *testing.T) {
	for _, name := range []string{"CodeBERT", "StableDiffusion"} {
		t.Run(name, func(t *testing.T) {
			b, err := BuildModel(name)
			if err != nil {
				t.Fatal(err)
			}
			live := func(c *Compiled) int64 {
				s := NewSample(b, b.MinSize, 0.5, 7)
				_, arena, err := c.InferWithArena(s.Inputs)
				if err != nil {
					t.Fatalf("arena serve: %v", err)
				}
				return c.WeightBytes() + arena.Size
			}
			fc, err := Compile(b)
			if err != nil {
				t.Fatal(err)
			}
			qc, _, err := CompileVerifiedSched(b, SchedConfig{
				Quant: QuantConfig{Format: Int8},
			})
			if err != nil {
				t.Fatal(err)
			}
			if float64(qc.WeightBytes()) > 0.5*float64(fc.WeightBytes()) {
				t.Fatalf("int8 weight bytes %d > 0.5 * f32 %d", qc.WeightBytes(), fc.WeightBytes())
			}
			f32, int8 := live(fc), live(qc)
			t.Logf("weights: f32=%d int8=%d (ratio %.3f); live: f32=%d int8=%d (ratio %.3f)",
				fc.WeightBytes(), qc.WeightBytes(),
				float64(qc.WeightBytes())/float64(fc.WeightBytes()),
				f32, int8, float64(int8)/float64(f32))
			if int8 >= f32 {
				t.Fatalf("int8 total live bytes %d not below f32 %d", int8, f32)
			}
		})
	}
}

// TestQuantQ4ServesWithinContract spot-checks the 4-bit block formats on
// the largest transformer: both Q4 variants compile, pack below the int8
// footprint, and serve within their (looser) drift contracts.
func TestQuantQ4ServesWithinContract(t *testing.T) {
	b, err := BuildModel("CodeBERT")
	if err != nil {
		t.Fatal(err)
	}
	int8c, _, err := CompileVerifiedSched(b, SchedConfig{Quant: QuantConfig{Format: Int8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []DType{Q4_0, Q4_1} {
		t.Run(f.String(), func(t *testing.T) {
			qc, _, err := CompileVerifiedSched(b, SchedConfig{Quant: QuantConfig{Format: f}})
			if err != nil {
				t.Fatal(err)
			}
			if qc.Quant() == nil || qc.Quant().Tensors == 0 {
				t.Fatal("no tensors packed")
			}
			if qc.WeightBytes() >= int8c.WeightBytes() {
				t.Fatalf("%v weights %d not below int8 %d", f, qc.WeightBytes(), int8c.WeightBytes())
			}
			s := NewSample(b, b.MinSize, 0.5, 7)
			_, rep, err := qc.InferGuarded(s.Inputs, GuardOptions{VerifyDrift: true})
			if err != nil {
				t.Fatalf("%v serve: %v", f, err)
			}
			if rep.FallbackTier == TierFloat32 {
				t.Fatalf("%v violated its drift contract: %+v", f, rep.Degradations)
			}
		})
	}
}

// TestQuantArtifactRoundTrip proves quantized compiles persist and warm-
// boot: the packed bytes are stored verbatim (never re-quantized at
// load), the warm boot replays the same quant report, its outputs match
// the cold compile's, and the float32 variant of the same model lives
// under a distinct artifact key (no cache collision between dtypes).
func TestQuantArtifactRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildModel("CodeBERT")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SchedConfig{Quant: QuantConfig{Format: Int8}}
	cold, _, coldInfo, err := CompileStoredSched(b, st, "cpu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coldInfo.Warm || !coldInfo.Saved {
		t.Fatalf("first boot: %+v", coldInfo)
	}
	warm, _, warmInfo, err := CompileStoredSched(b, st, "cpu", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warmInfo.Warm {
		t.Fatalf("second boot not warm: %+v (corrupt=%v)", warmInfo, warmInfo.CorruptFallback)
	}
	cq, wq := cold.Quant(), warm.Quant()
	if wq == nil || wq.Tensors != cq.Tensors || wq.QuantBytes != cq.QuantBytes {
		t.Fatalf("warm quant report differs: cold=%+v warm=%+v", cq, wq)
	}
	if warm.WeightBytes() != cold.WeightBytes() {
		t.Fatalf("warm weight bytes %d != cold %d", warm.WeightBytes(), cold.WeightBytes())
	}
	s := NewSample(b, b.MinSize, 0.5, 7)
	coldOut, _, err := cold.Infer(s.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	warmOut, _, err := warm.Infer(s.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, ref := range coldOut {
		if got := warmOut[name]; got == nil || !tensor.AllClose(ref, got, 0) {
			t.Fatalf("warm output %q differs from cold", name)
		}
	}
	// The float32 compile of the same model must not collide with the
	// quantized artifact: it misses the store and boots cold.
	f32, _, f32Info, err := CompileStored(b, st, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if f32Info.Warm {
		t.Fatal("float32 boot warm-loaded the quantized artifact")
	}
	if f32.Quant() != nil {
		t.Fatalf("float32 boot carries a quant report: %+v", f32.Quant())
	}
}
