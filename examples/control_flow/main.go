// Control flow: run SkipNet — a gated ResNet whose blocks are skipped
// per-input through the <Switch, Combine> operator pair — and show how
// SoD²'s predicated execution compares with the baselines'
// execute-all-branches-and-strip policy (§2, Fig. 9).
package main

import (
	"fmt"
	"log"

	"repro/internal/costmodel"
	"repro/internal/frameworks"
	"repro/internal/workload"

	sod2 "repro"
)

func main() {
	b, err := sod2.BuildModel("SkipNet")
	if err != nil {
		log.Fatal(err)
	}
	c, err := frameworks.Compile(b)
	if err != nil {
		log.Fatal(err)
	}
	dev := costmodel.SD888CPU

	predicated := frameworks.NewSoD2(frameworks.FullSoD2())
	allOpts := frameworks.FullSoD2()
	allOpts.ExecuteAllBranches = true
	executeAll := frameworks.NewSoD2(allOpts)

	fmt.Printf("%10s | %12s | %12s | %s\n", "gate bias", "predicated", "execute-all", "blocks taken")
	for _, gate := range []float32{0.0, 0.25, 0.5, 0.75, 1.0} {
		s := workload.Fixed(b, 1, 256, gate, 99)[0]
		rp, err := predicated.Run(c, s, dev)
		if err != nil {
			log.Fatal(err)
		}
		ra, err := executeAll.Run(c, s, dev)
		if err != nil {
			log.Fatal(err)
		}
		// Count executed (non-skipped) block bodies from the trace.
		res, err := c.Execute(s, false, frameworks.OrderPlanned)
		if err != nil {
			log.Fatal(err)
		}
		var skipped int
		for _, ev := range res.Trace.Events {
			if ev.Skipped {
				skipped++
			}
		}
		fmt.Printf("%10.2f | %9.3f ms | %9.3f ms | %d ops skipped\n",
			gate, rp.LatencyMS, ra.LatencyMS, skipped)
	}
	fmt.Println("\npredicated execution tracks the taken path; execute-all pays for every branch")
}
