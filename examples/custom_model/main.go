// Custom model: build your own dynamic model against the public API,
// serialize it to the JSON model format, load it back, and push it
// through the full pipeline — RDP analysis, fusion, execution planning,
// and execution at several input sizes. This is the path a downstream
// user takes for a model that is not one of the ten built-ins.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/lattice"
	"repro/internal/tensor"

	sod2 "repro"
)

// buildTinyTransformerBlock assembles one attention-free mixer block over
// a [1, L, 16] sequence: LayerNorm → token-mix MatMul over a dynamic-
// length axis (via transpose) → residual, then a channel MLP.
func buildTinyTransformerBlock() *sod2.Graph {
	g := sod2.NewGraph("mixer")
	const d = 16
	g.AddInput("x", tensor.Float32, lattice.Ranked(
		lattice.FromInt(1), lattice.FromSym("L"), lattice.FromInt(d)))

	rng := tensor.NewRNG(7)
	g.AddInitializer("w1", tensor.RandomFloats(rng, 0.2, d, d*2))
	g.AddInitializer("b1", tensor.RandomFloats(rng, 0.02, d*2))
	g.AddInitializer("w2", tensor.RandomFloats(rng, 0.2, d*2, d))
	g.AddInitializer("lns", tensor.RandomFloats(rng, 0.1, d))
	g.AddInitializer("lnb", tensor.RandomFloats(rng, 0.01, d))

	g.Op("LayerNormalization", "ln", []string{"x", "lns", "lnb"}, []string{"n"}, nil)
	g.Op("MatMul", "up", []string{"n", "w1"}, []string{"h"}, nil)
	g.Op("Add", "bias", []string{"h", "b1"}, []string{"hb"}, nil)
	g.Op("Gelu", "act", []string{"hb"}, []string{"ha"}, nil)
	g.Op("MatMul", "down", []string{"ha", "w2"}, []string{"o"}, nil)
	g.Op("Add", "res", []string{"x", "o"}, []string{"y"}, nil)
	g.AddOutput("y")
	return g
}

func main() {
	g := buildTinyTransformerBlock()

	// Serialize → deserialize: the JSON model format round-trips the
	// graph, its initializers, and the symbolic input shape.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized model: %d bytes of JSON\n", buf.Len())
	loaded, err := sod2.ReadGraphJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Full pipeline over the loaded graph.
	res, err := sod2.Analyze(loaded, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Statistics()
	fmt.Printf("RDP: %d tensors, %.0f%% resolved\n", st.Total, st.ResolvedFraction()*100)

	fp := sod2.Fuse(loaded, res.Infos)
	fmt.Printf("fusion: %d ops → %d groups (%d tensors never materialize)\n",
		len(loaded.Nodes), fp.LayerCount(), len(fp.Internal))

	ep, err := sod2.PlanExecution(loaded, res.Infos, fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution plan: %d sub-graphs, est. peak %d bytes\n",
		len(ep.Subgraphs), ep.PeakBytes)

	for _, L := range []int64{8, 32, 128} {
		x := tensor.RandomFloats(tensor.NewRNG(uint64(L)), 1, 1, L, 16)
		out, err := sod2.RunGraph(loaded, map[string]*sod2.Tensor{"x": x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%3d → y %v\n", L, out["y"].Shape)
	}
}
