// Quickstart: build a small dynamic graph by hand, analyze it with RDP,
// and execute it with two different input lengths — no recompilation in
// between. This is the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/lattice"
	"repro/internal/tensor"

	sod2 "repro"
)

func main() {
	// A graph over a sequence of unknown length L: the Reshape target is
	// computed at runtime from the input's own shape (the idiom RDP
	// resolves statically).
	g := sod2.NewGraph("quickstart")
	g.AddInput("x", tensor.Float32, lattice.Ranked(
		lattice.FromInt(1), lattice.FromSym("L"), lattice.FromInt(4)))
	g.AddInitializer("negone", tensor.FromInts([]int64{1}, []int64{-1}))
	g.AddInitializer("two", tensor.FromInts([]int64{1}, []int64{2}))
	g.Op("Shape", "shape", []string{"x"}, []string{"xs"}, nil)
	g.Op("Slice", "len", []string{"xs", "i1", "i2", "a0"}, []string{"lvec"}, nil)
	g.AddInitializer("i1", tensor.FromInts([]int64{1}, []int64{1}))
	g.AddInitializer("i2", tensor.FromInts([]int64{1}, []int64{2}))
	g.AddInitializer("a0", tensor.FromInts([]int64{1}, []int64{0}))
	g.Op("Concat", "target", []string{"lvec", "negone", "two"}, []string{"t"},
		map[string]sod2.NodeAttr{"axis": sod2.IntAttr(0)})
	g.Op("Reshape", "reshape", []string{"x", "t"}, []string{"y"}, nil)
	g.Op("Relu", "act", []string{"y"}, []string{"z"}, nil)
	g.AddOutput("z")

	// 1. Static analysis: every intermediate shape is resolved in terms
	// of the symbolic length L, including the data-driven Reshape.
	res, err := sod2.Analyze(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== RDP analysis ==")
	fmt.Print(res.Dump())

	// 2. Execution at two lengths, same compiled graph.
	for _, L := range []int64{3, 7} {
		x := tensor.RandomFloats(tensor.NewRNG(1), 1, 1, L, 4)
		out, err := sod2.RunGraph(g, map[string]*sod2.Tensor{"x": x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%d → z shape %v\n", L, out["z"].Shape)
	}
}
