// Dynamic shapes: run CodeBERT over a stream of inputs whose sequence
// lengths change on every inference, comparing SoD² against the MNN
// re-initialization policy (the paper's §2 motivation). SoD² compiles
// once — the RDP analysis resolves every intermediate shape in terms of
// the symbolic length — while the static-framework policy re-initializes
// whenever the shape changes.
package main

import (
	"fmt"
	"log"

	"repro/internal/costmodel"
	"repro/internal/frameworks"
	"repro/internal/workload"

	sod2 "repro"
)

func main() {
	b, err := sod2.BuildModel("CodeBERT")
	if err != nil {
		log.Fatal(err)
	}
	c, err := frameworks.Compile(b)
	if err != nil {
		log.Fatal(err)
	}

	dev := costmodel.SD888CPU
	sodEng := frameworks.NewSoD2(frameworks.FullSoD2())
	mnnEng := frameworks.NewMNNWithReinit()

	fmt.Printf("%8s | %14s | %14s\n", "seq len", "SoD2 (ms)", "MNN+reinit (ms)")
	samples := workload.Samples(b, 8, 2024)
	var sodTotal, mnnTotal float64
	for _, s := range samples {
		rs, err := sodEng.Run(c, s, dev)
		if err != nil {
			log.Fatal(err)
		}
		rm, err := mnnEng.Run(c, s, dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d | %14.3f | %14.3f\n", s.Size, rs.LatencyMS, rm.LatencyMS)
		sodTotal += rs.LatencyMS
		mnnTotal += rm.LatencyMS
	}
	fmt.Printf("\ncontinuously-changing shapes: SoD2 %.2fx faster end-to-end\n", mnnTotal/sodTotal)

	// Show what makes this possible: the analysis result for the
	// attention block's dynamically reshaped tensor.
	st := c.RDPResult.Statistics()
	fmt.Printf("RDP resolved %.0f%% of %d tensors without executing anything\n",
		st.ResolvedFraction()*100, st.Total)
}
