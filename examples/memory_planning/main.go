// Memory planning: derive an intermediate-tensor liveness program from a
// real YOLO-v6 execution trace and compare the three offset planners of
// §4.4.1 — SoD²'s peak-first bidirectional greedy, the best-fit greedy
// baseline, and the information-theoretic lower bound — plus what the
// arena looks like without any plan (the dynamic-allocator pool).
package main

import (
	"fmt"
	"log"

	"repro/internal/frameworks"
	"repro/internal/memplan"
	"repro/internal/workload"

	sod2 "repro"
)

func mb(b int64) float64 { return float64(b) / (1 << 20) }

func main() {
	b, err := sod2.BuildModel("YOLO-V6")
	if err != nil {
		log.Fatal(err)
	}
	c, err := frameworks.Compile(b)
	if err != nil {
		log.Fatal(err)
	}
	s := workload.Fixed(b, 1, 416, 0.5, 7)[0]
	res, err := c.Execute(s, false, frameworks.OrderPlanned)
	if err != nil {
		log.Fatal(err)
	}

	// The liveness program: every intermediate tensor with its birth and
	// death step under the planned order; fusion-internal tensors never
	// materialize at all.
	prog := frameworks.TraceProgram(c.Graph, res.Trace, c.FusionRDP.Internal)
	fmt.Printf("trace: %d buffers over %d steps\n", len(prog.Bufs), prog.Steps)
	fmt.Printf("lower bound (peak live):     %8.2f MB\n", mb(prog.PeakLive()))

	pf := memplan.PeakFirst(prog)
	if err := pf.Validate(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SoD2 peak-first arena:       %8.2f MB\n", mb(pf.ArenaSize))

	bf := memplan.BestFit(prog)
	if err := bf.Validate(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-fit greedy arena:       %8.2f MB\n", mb(bf.ArenaSize))

	// No plan at all: the lifetimes are unknown, deallocation is
	// deferred, and buffers go through a caching pool allocator.
	noPlan := frameworks.TraceProgramDeferred(c.Graph, res.Trace, nil, 6)
	fmt.Printf("no plan (deferred frees):    %8.2f MB peak live\n", mb(noPlan.PeakLive()))

	// Execute *into* the planned arena: the runtime half of DMP. The
	// outputs are identical to heap execution — the plan is safe.
	arenaRes, arena, err := c.RunWithArena(s.Inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arena-backed execution:      %8.2f MB arena, %d placed tensors\n",
		mb(arena.Size), len(arena.Offsets))
	for name, ref := range res.Outputs {
		if got := arenaRes.Outputs[name]; got == nil || len(got.F) != len(ref.F) {
			log.Fatalf("arena execution diverged on %s", name)
		}
	}

	// A few of the biggest placements.
	fmt.Println("\nlargest buffers in the peak-first plan:")
	shown := 0
	for _, buf := range prog.Bufs {
		if buf.Size >= 1<<20 && shown < 6 {
			fmt.Printf("  %-28s %6.2f MB @ offset %8d, steps [%d,%d]\n",
				buf.Name, mb(buf.Size), pf.Offsets[buf.Name], buf.Birth, buf.Death)
			shown++
		}
	}
}
