package sod2

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

// compileVerifiedModel compiles one evaluation model with the static
// verifier on (region serving enabled) for the resilience tests.
func compileVerifiedModel(t *testing.T, name string) *Compiled {
	t.Helper()
	b, err := BuildModel(name)
	if err != nil {
		t.Fatal(err)
	}
	c, rep, err := CompileVerified(b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Mem.Proven {
		t.Fatalf("%s: memory plan unproven (%s); resilience tests assume region serving", name, rep.Mem.Reason)
	}
	return c
}

// TestSessionDeadlineStall drives the deadline path end to end: a
// persistent slow-kernel stall longer than the request timeout must
// surface context.DeadlineExceeded — and expiry is not a plan fault, so
// the breaker must not count it.
func TestSessionDeadlineStall(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	inj := faultinject.New(faultinject.KernelStall, 0)
	inj.Repeat = true
	inj.Delay = 25 * time.Millisecond
	sess := c.NewSession(SessionOptions{
		Hooks:          inj.Hooks(),
		RequestTimeout: 5 * time.Millisecond,
	})
	b, _ := BuildModel("CodeBERT")
	sample := NewSample(b, 64, 0.5, 1)
	_, _, err := sess.InferConcurrent(sample.Inputs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	st := sess.Stats()
	if st.Breaker.Faults != 0 {
		t.Fatalf("deadline expiry counted as a plan fault: %+v", st.Breaker)
	}
	if st.Health != resilience.Healthy {
		t.Fatalf("health = %v, want healthy", st.Health)
	}
}

// TestSessionRetryRecoversTransientFault pins the retry ladder: a
// one-shot kernel error fails the first attempt, the bounded retry
// re-runs, the one-shot fault does not re-fire, and the request
// succeeds. The fault is still recorded by the breaker (degraded), and
// clean traffic heals it back.
func TestSessionRetryRecoversTransientFault(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	inj := faultinject.New(faultinject.KernelError, 0)
	sess := c.NewSession(SessionOptions{
		Hooks: inj.Hooks(),
		Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond},
		Breaker: resilience.BreakerConfig{
			TripThreshold: 5, RecoverSuccesses: 2,
		},
	})
	b, _ := BuildModel("CodeBERT")
	sample := NewSample(b, 64, 0.5, 2)
	out, _, err := sess.InferConcurrent(sample.Inputs)
	if err != nil {
		t.Fatalf("retry should have recovered the one-shot fault: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no outputs")
	}
	st := sess.Stats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.Breaker.Faults != 1 {
		t.Fatalf("breaker faults = %d, want 1 (the failed first attempt)", st.Breaker.Faults)
	}
	if st.Health != resilience.Degraded {
		t.Fatalf("health = %v, want degraded after one fault", st.Health)
	}
	// Clean traffic recovers degraded → healthy without a trip.
	for i := 0; i < 2; i++ {
		if _, _, err := sess.InferConcurrent(sample.Inputs); err != nil {
			t.Fatal(err)
		}
	}
	if st = sess.Stats(); st.Health != resilience.Healthy || st.Breaker.Trips != 0 {
		t.Fatalf("health = %v trips = %d, want healthy with no trips", st.Health, st.Breaker.Trips)
	}
}

// TestSessionReplanTierNotRetried pins the tier-awareness rule: a fault
// on a request that already degraded to the dynamic-replan tier is not
// retried — the replan was the recovery attempt.
func TestSessionReplanTierNotRetried(t *testing.T) {
	p := resilience.RetryPolicy{MaxAttempts: 3}
	if p.Retryable(&OpError{Op: "MatMul"}, TierReplan) {
		t.Fatal("replan-tier fault must not be retryable")
	}
	if !p.Retryable(&OpError{Op: "MatMul"}, TierPlanned) {
		t.Fatal("planned-tier kernel fault must be retryable")
	}
}

// TestSessionShedsWhenSaturated saturates a MaxConcurrent=1 session
// with a stalled request and asserts the next request sheds immediately
// with the typed overload error instead of queueing.
func TestSessionShedsWhenSaturated(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	inj := faultinject.New(faultinject.KernelStall, 0)
	inj.Repeat = true
	inj.Delay = 30 * time.Millisecond
	sess := c.NewSession(SessionOptions{
		Hooks:     inj.Hooks(),
		Admission: AdmissionConfig{MaxConcurrent: 1, MaxQueue: 0},
	})
	b, _ := BuildModel("CodeBERT")
	sample := NewSample(b, 64, 0.5, 3)

	done := make(chan error, 1)
	go func() {
		_, _, err := sess.InferConcurrent(sample.Inputs)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sess.Stats().Admission.InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	_, _, err := sess.InferConcurrent(sample.Inputs)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated session: err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Resource != "concurrency" {
		t.Fatalf("err = %#v, want concurrency OverloadError", err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Errorf("shed took %v; shedding must not queue behind the stall", took)
	}
	if err := <-done; err != nil {
		t.Fatalf("stalled request should still complete: %v", err)
	}
	st := sess.Stats()
	if st.Admission.ShedConcurrency != 1 || st.Admission.InFlight != 0 {
		t.Fatalf("admission stats = %+v", st.Admission)
	}
}

// TestInferBatchCtxCancellation pins that per-sample cancellation is
// reported distinctly from model errors, for both flavors: a request
// cancelled in flight (the executor's between-node context check) and a
// request cancelled before dispatch. A gate hook deterministically
// parks in-flight requests at their first kernel so the cancellation
// always lands mid-batch — no timing dependence.
func TestInferBatchCtxCancellation(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	var gateOn atomic.Bool
	gate := make(chan struct{})
	hooks := &exec.Hooks{PreKernel: func(_ *graph.Node, _ []*tensor.Tensor) error {
		if gateOn.Load() {
			<-gate
		}
		return nil
	}}
	sess := c.NewSession(SessionOptions{Workers: 2, Hooks: hooks})
	b, _ := BuildModel("CodeBERT")
	mkSamples := func(n, seed int) []Sample {
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = NewSample(b, 64, 0.5, uint64(seed+i))
		}
		return samples
	}

	// Un-cancelled batch: everything completes, nothing is cancelled.
	for _, r := range sess.InferBatch(mkSamples(4, 100)) {
		if r.Err != nil || r.Cancelled {
			t.Fatalf("clean batch sample %d: err=%v cancelled=%v", r.Index, r.Err, r.Cancelled)
		}
	}

	// Cancelled mid-batch: workers park at the gate, the context is
	// cancelled, the gate opens — in-flight requests abort at the next
	// node, undispatched ones are marked without running.
	gateOn.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for sess.Stats().Admission.InFlight < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
		gateOn.Store(false)
		close(gate)
	}()
	results := sess.InferBatchCtx(ctx, mkSamples(8, 200))
	var cancelled, beforeDispatch int
	for _, r := range results {
		if r.Err == nil || !r.Cancelled {
			t.Fatalf("sample %d: err=%v cancelled=%v, want cancellation", r.Index, r.Err, r.Cancelled)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("sample %d: err = %v, does not unwrap to context.Canceled", r.Index, r.Err)
		}
		if r.Outputs != nil {
			t.Errorf("sample %d: cancelled result carries outputs", r.Index)
		}
		cancelled++
		if strings.Contains(r.Err.Error(), "before dispatch") {
			beforeDispatch++
		}
	}
	if cancelled != 8 {
		t.Fatalf("cancelled = %d, want all 8", cancelled)
	}
	if beforeDispatch == 0 {
		t.Error("no sample was marked cancelled-before-dispatch")
	}
	if beforeDispatch == 8 {
		t.Error("no sample observed in-flight cancellation")
	}
	// Cancellation is not a model fault: health stays clean.
	if st := sess.Stats(); st.Breaker.Faults != 0 || st.Health != resilience.Healthy {
		t.Fatalf("cancellations counted against health: %+v", st.Breaker)
	}
}

// TestSessionMemoryAdmission exercises the arena-headroom gate: with a
// proven region plan as the per-request estimate and a budget below two
// plans, a second concurrent request sheds with the typed memory
// overload error.
func TestSessionMemoryAdmission(t *testing.T) {
	c := compileVerifiedModel(t, "CodeBERT")
	est := c.inner.PlannedArenaBytes()
	if est <= 0 {
		t.Fatal("no planned arena estimate")
	}
	inj := faultinject.New(faultinject.KernelStall, 0)
	inj.Repeat = true
	inj.Delay = 30 * time.Millisecond
	sess := c.NewSession(SessionOptions{
		Hooks:     inj.Hooks(),
		Admission: AdmissionConfig{MemoryBudget: est + est/2},
	})
	b, _ := BuildModel("CodeBERT")
	sample := NewSample(b, 64, 0.5, 4)
	done := make(chan error, 1)
	go func() {
		_, _, err := sess.InferConcurrent(sample.Inputs)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sess.Stats().Admission.ReservedBytes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reserved")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err := sess.InferConcurrent(sample.Inputs)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Resource != "memory" {
		t.Fatalf("err = %v, want memory OverloadError", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().Admission.ReservedBytes; got != 0 {
		t.Fatalf("leaked reservation: %d bytes", got)
	}
}
