package sod2

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/frameworks"
	"repro/internal/resilience"
)

// CacheStats snapshots a compiled model's runtime-cache effectiveness
// (trace memo and shape-keyed plan cache hit/miss counters).
type CacheStats = frameworks.CacheStats

// Invalidate drops the compiled model's memoized runtime artifacts —
// the (sample, policy) trace memo, the shape-keyed plan cache, and the
// static region proof. Call it between experiments, and after mutating
// any compiled artifact in place. Cumulative hit/miss counters survive.
func (c *Compiled) Invalidate() { c.inner.Invalidate() }

// CacheStats snapshots the compiled model's cache counters.
func (c *Compiled) CacheStats() CacheStats { return c.inner.Stats() }

// SessionOptions configure a serving session.
type SessionOptions struct {
	// Device is the analytic device profile (SD888CPU when zero).
	Device Device
	// Workers bounds InferBatch's fan-out (GOMAXPROCS when 0).
	Workers int
	// Guard options applied to every request.
	ArenaBudget  int64
	MaxLoopIters int64
	Strict       bool
	// Hooks are threaded into every request's executor (fault injection,
	// tracing). The hooks are shared by all concurrent requests and must
	// be safe for concurrent use.
	Hooks *exec.Hooks
	// Parallel serves every request with the wavefront-parallel
	// interpreter when the model's widened plan is proven (sequential
	// otherwise — check Report.Wavefronts). ParallelWorkers sizes each
	// request's worker pool (GOMAXPROCS when 0).
	Parallel        bool
	ParallelWorkers int

	// Admission bounds concurrent work: a request past the concurrency
	// semaphore's bounded queue, or whose planned arena estimate does not
	// fit the memory budget's headroom, sheds with ErrOverloaded instead
	// of queueing unboundedly. The zero value admits everything.
	Admission resilience.AdmissionConfig
	// Retry is the bounded retry/backoff ladder for transient execution
	// faults. Tier-aware: a request that already degraded to the
	// dynamic-replan tier is never retried. The zero value never retries.
	Retry resilience.RetryPolicy
	// Breaker tunes the per-model circuit breaker driving the health
	// state machine (healthy → degraded → quarantined → probation →
	// healthy). Zero fields take the breaker's defaults; the session
	// installs its own OnTrip hook (plan quarantine + background
	// re-verification) unless one is set explicitly.
	Breaker resilience.BreakerConfig
	// RequestTimeout bounds each request end to end — admission wait,
	// every retry attempt, and backoff sleeps (0 = none). Per-call
	// contexts (InferSampleCtx et al.) compose with it; whichever ends
	// first cancels the request.
	RequestTimeout time.Duration
}

// Session is the concurrent serving facade over one compiled model: any
// number of goroutines may call InferConcurrent/InferSample/InferBatch
// (or their Ctx variants) on one Session. The session owns the serving
// policies — admission gate, retry ladder, and the circuit breaker's
// health state — while all shape-dependent memoization (plan cache,
// arena pooling) lives on the shared Compiled, so several Sessions over
// one model share those caches (but each judges health on its own
// traffic).
//
// Self-healing: execution faults (contained kernel panics/errors, arena
// faults, numeric contract violations) feed the breaker. Enough
// consecutive faults trip it: the cached plans and the static region
// proof are invalidated, one re-verification runs in the background,
// and requests serve through the dynamic fallback tier (recorded as a
// KindQuarantine degradation) until the new proof passes and probation
// traffic stays clean — then planned/region serving resumes.
//
// Requests carrying the same non-zero Sample.ID that are in flight at
// the same time are coalesced: one guarded execution serves all of them
// (the singleflight dedup of a hot request). Coalesced callers share the
// output tensors and must treat them as read-only; the executing
// request's context governs the shared run.
type Session struct {
	c       *Compiled
	dev     Device
	workers int
	gopts   GuardOptions
	timeout time.Duration

	adm   *resilience.Admission
	brk   *resilience.Breaker
	retry resilience.RetryPolicy

	mu       sync.Mutex
	inflight map[uint64]*inferFlight
	closed   bool
	active   int           // requests between begin() and end()
	idle     chan struct{} // closed when active drops to 0 (lazily made by Close)

	requests  atomic.Uint64
	coalesced atomic.Uint64
	retries   atomic.Uint64

	buckets       atomic.Uint64
	bucketMembers atomic.Uint64
}

// ErrClosed is returned by every inference entry point after Close has
// been called on the session (use errors.Is).
var ErrClosed = errors.New("sod2: session closed")

// begin admits one request into the session's in-flight set, refusing
// when the session is closed. Every admission must be paired with end().
func (s *Session) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.active++
	return nil
}

// end retires one request; the last one out signals a waiting Close.
func (s *Session) end() {
	s.mu.Lock()
	s.active--
	if s.active == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Close shuts the session down gracefully: new requests (including
// coalesced joins) are refused with ErrClosed immediately, requests
// already admitted drain to completion bounded by ctx, and once drained
// the process-global pooled arena buffers are released to the garbage
// collector (other sessions simply re-allocate on their next request).
// If ctx ends first, Close returns ctx's error with the still-in-flight
// count — the session stays closed to new work and the stragglers keep
// running to completion under their own contexts. Idempotent and safe
// for concurrent use; later Closes wait for the same drain.
func (s *Session) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	var idle chan struct{}
	if s.active > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle = s.idle
	}
	s.mu.Unlock()

	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			s.mu.Lock()
			active := s.active
			s.mu.Unlock()
			return fmt.Errorf("sod2: close: %d request(s) still in flight: %w", active, ctx.Err())
		}
	}
	exec.DrainArenaPools()
	return nil
}

type inferFlight struct {
	done chan struct{}
	out  map[string]*Tensor
	rep  Report
	err  error
}

// NewSession builds a serving session over a compiled model.
func (c *Compiled) NewSession(opts SessionOptions) *Session {
	var zero Device
	if opts.Device == zero {
		opts.Device = SD888CPU
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		c:       c,
		dev:     opts.Device,
		workers: opts.Workers,
		gopts: GuardOptions{
			ArenaBudget:  opts.ArenaBudget,
			MaxLoopIters: opts.MaxLoopIters,
			Strict:       opts.Strict,
			Hooks:        opts.Hooks,
			Parallel:     opts.Parallel,
			Workers:      opts.ParallelWorkers,
		},
		timeout:  opts.RequestTimeout,
		adm:      resilience.NewAdmission(opts.Admission),
		retry:    opts.Retry,
		inflight: map[uint64]*inferFlight{},
	}
	brkCfg := opts.Breaker
	if brkCfg.OnTrip == nil {
		// Plan quarantine: drop the cached plans and the region proof the
		// faulting requests were served from, then force exactly one
		// re-verification. Probation serving starts only when the new
		// proof passes; an unprovable verdict keeps the model quarantined
		// on the dynamic tier (safe, just slower).
		brkCfg.OnTrip = func() {
			c.inner.Invalidate()
			rep := c.inner.Verify()
			s.brk.ReverifyDone(rep.Mem.Proven)
		}
	}
	s.brk = resilience.NewBreaker(brkCfg)
	return s
}

// Health reports the model's current serving health as judged by this
// session's circuit breaker.
func (s *Session) Health() resilience.HealthState { return s.brk.State() }

// InferConcurrent executes one set of inputs under the session's device
// and guard options. Safe to call from any number of goroutines; the
// returned Report carries the cache-hit tier (PlanCacheHit,
// RegionCacheHit) and any degradations taken.
func (s *Session) InferConcurrent(inputs map[string]*Tensor) (map[string]*Tensor, Report, error) {
	return s.InferConcurrentCtx(context.Background(), inputs)
}

// InferConcurrentCtx is InferConcurrent bounded by a context:
// cancellation is honored while queued for admission, between retry
// attempts, and between executed nodes (including inside If/Loop
// bodies).
func (s *Session) InferConcurrentCtx(ctx context.Context, inputs map[string]*Tensor) (map[string]*Tensor, Report, error) {
	if err := s.begin(); err != nil {
		return nil, Report{}, err
	}
	defer s.end()
	s.requests.Add(1)
	return s.serve(ctx, Sample{Inputs: inputs})
}

// InferSample executes one workload sample. Samples with a non-zero ID
// coalesce with identical in-flight requests: N concurrent goroutines
// submitting the same sample share one guarded execution (and its
// outputs, which they must treat as read-only).
func (s *Session) InferSample(sample Sample) (map[string]*Tensor, Report, error) {
	return s.InferSampleCtx(context.Background(), sample)
}

// InferSampleCtx is InferSample bounded by a context. A coalesced
// caller whose context ends while waiting abandons the shared flight
// and returns its own context error; the execution itself runs under
// the initiating request's context.
func (s *Session) InferSampleCtx(ctx context.Context, sample Sample) (map[string]*Tensor, Report, error) {
	if sample.ID == 0 {
		return s.InferConcurrentCtx(ctx, sample.Inputs)
	}
	if err := s.begin(); err != nil {
		return nil, Report{}, err
	}
	defer s.end()
	s.requests.Add(1)
	s.mu.Lock()
	if fl, ok := s.inflight[sample.ID]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.out, fl.rep, fl.err
		case <-ctx.Done():
			return nil, Report{}, fmt.Errorf("sod2: coalesced request abandoned: %w", ctx.Err())
		}
	}
	fl := &inferFlight{done: make(chan struct{})}
	s.inflight[sample.ID] = fl
	s.mu.Unlock()

	fl.out, fl.rep, fl.err = s.serve(ctx, sample)
	s.mu.Lock()
	delete(s.inflight, sample.ID)
	s.mu.Unlock()
	close(fl.done)
	return fl.out, fl.rep, fl.err
}

// serve is the resilient request path every inference goes through:
// deadline, admission, breaker-advised execution, tier-aware retries.
func (s *Session) serve(ctx context.Context, sample Sample) (map[string]*Tensor, Report, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	// Admission: shed instead of queueing unboundedly. The reservation
	// estimate is the statically proven worst-case arena footprint (0
	// when no proof is held — the per-request ArenaBudget still bounds
	// the run).
	release, err := s.adm.Admit(ctx, s.c.inner.PlannedArenaBytes())
	if err != nil {
		return nil, Report{}, err
	}
	defer release()
	return s.serveAdmitted(ctx, sample)
}

// serveAdmitted is the post-admission request path: breaker-advised
// execution with tier-aware retries. The caller holds the admission
// reservation for the duration.
func (s *Session) serveAdmitted(ctx context.Context, sample Sample) (map[string]*Tensor, Report, error) {
	for attempt := 1; ; attempt++ {
		gopts := s.gopts
		gopts.Ctx = ctx
		if s.brk.Advice() == resilience.ServeDynamic {
			// Quarantine/probation: the plan is distrusted until the
			// breaker closes — serve on the dynamic fallback tier.
			gopts.ForceDynamic = true
		}
		out, rep, err := s.c.inferSample(sample, s.dev, gopts)
		if err == nil {
			s.brk.OnSuccess()
			return out, rep, nil
		}
		// Cancellation, deadline expiry, and deterministic contract
		// verdicts are not plan faults; only execution faults count
		// against the breaker (and only those are worth retrying).
		if resilience.CountsAsFault(err) {
			s.brk.OnFailure()
		}
		if attempt >= s.retry.Attempts() || !s.retry.Retryable(err, rep.FallbackTier) {
			return nil, rep, err
		}
		s.retries.Add(1)
		if !resilience.SleepCtx(ctx, s.retry.Backoff(attempt)) {
			return nil, rep, fmt.Errorf("sod2: request expired during retry backoff (attempt %d, last error %v): %w",
				attempt, err, ctx.Err())
		}
	}
}

// BatchResult is one request's outcome within an InferBatch fan-out.
type BatchResult struct {
	// Index is the request's position in the submitted slice.
	Index int
	// Outputs are the inference outputs (nil on error).
	Outputs map[string]*Tensor
	// Report is the per-request latency/memory/cache report.
	Report Report
	// Err is the request's failure, if any (other requests proceed).
	Err error
	// Cancelled reports that Err is the batch context ending (deadline
	// or cancellation) rather than a model or admission failure — the
	// sample itself was never refuted.
	Cancelled bool
}

// InferBatch fans the samples out over the session's worker pool and
// returns one result per sample, in submission order. A failed request
// records its error without affecting the rest of the batch.
func (s *Session) InferBatch(samples []Sample) []BatchResult {
	return s.InferBatchCtx(context.Background(), samples)
}

// InferBatchCtx is InferBatch bounded by a context. When the context
// ends mid-batch, in-flight samples return their cancellation and
// not-yet-dispatched samples are marked without running; both carry
// Cancelled=true, distinct from per-sample model errors.
func (s *Session) InferBatchCtx(ctx context.Context, samples []Sample) []BatchResult {
	results := make([]BatchResult, len(samples))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(samples) {
		workers = len(samples)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out, rep, err := s.InferSampleCtx(ctx, samples[i])
				results[i] = BatchResult{Index: i, Outputs: out, Report: rep, Err: err,
					Cancelled: isCancellation(err)}
			}
		}()
	}
	for i := range samples {
		select {
		case jobs <- i:
			continue
		case <-ctx.Done():
		}
		// Context ended before this sample was dispatched: mark it and
		// everything after it cancelled without executing.
		for j := i; j < len(samples); j++ {
			results[j] = BatchResult{Index: j, Cancelled: true,
				Err: fmt.Errorf("sod2: batch cancelled before dispatch: %w", ctx.Err())}
		}
		break
	}
	close(jobs)
	wg.Wait()
	return results
}

// isCancellation classifies a request error as context-driven.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// FamilyKey returns the shape-family bucket key for one concrete input
// set, and whether that key is the statically proven region key. All
// requests whose inputs bind inside the verified region share a single
// key — the region proof *is* the shape family — so a cross-request
// batching layer can coalesce them even when their concrete shapes
// differ. Outside the region the key degrades to the per-shape plan
// key; an empty key means the inputs are incomplete and cannot be
// bucketed.
func (s *Session) FamilyKey(inputs map[string]*Tensor) (string, bool) {
	return s.c.inner.FamilyKey(inputs)
}

// InferBucketCtx executes one shape-family bucket of samples as a
// single coalesced unit of work: the bucket is admitted ONCE — one
// concurrency slot and one planned-arena-byte reservation cover every
// member — and the members then execute sequentially against the
// shared verified plan. Sequential member execution is what keeps the
// single reservation honest: at most one member's arena is live at a
// time (the pooled backing buffer is reused member to member), so the
// admission ledger's accounting of the bucket equals its true peak.
// Admission cost, ledger traffic, and plan/region verification all
// amortize across the bucket's clients; wall-clock parallelism comes
// from distinct buckets running concurrently.
//
// Per-member semantics mirror InferBatchCtx: a member failure records
// its error without affecting the rest, members not yet dispatched when
// ctx ends come back Cancelled, and a shed bucket sheds every member
// with the same typed error. The session's RequestTimeout bounds the
// whole bucket — the bucket is one request from the resilience layer's
// point of view.
func (s *Session) InferBucketCtx(ctx context.Context, samples []Sample) []BatchResult {
	results := make([]BatchResult, len(samples))
	if len(samples) == 0 {
		return results
	}
	fail := func(err error) []BatchResult {
		cancelled := isCancellation(err)
		for i := range results {
			results[i] = BatchResult{Index: i, Err: err, Cancelled: cancelled}
		}
		return results
	}
	if err := s.begin(); err != nil {
		return fail(err)
	}
	defer s.end()
	s.requests.Add(uint64(len(samples)))
	s.buckets.Add(1)
	s.bucketMembers.Add(uint64(len(samples)))
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	release, err := s.adm.Admit(ctx, s.c.inner.PlannedArenaBytes())
	if err != nil {
		return fail(err)
	}
	defer release()
	for i := range samples {
		if cerr := ctx.Err(); cerr != nil {
			results[i] = BatchResult{Index: i, Cancelled: true,
				Err: fmt.Errorf("sod2: bucket cancelled before member dispatch: %w", cerr)}
			continue
		}
		out, rep, err := s.serveAdmitted(ctx, samples[i])
		results[i] = BatchResult{Index: i, Outputs: out, Report: rep, Err: err,
			Cancelled: isCancellation(err)}
	}
	return results
}

// SessionStats describes a session's request flow, the serving health
// the resilience layer maintains, and the shared model caches behind it.
type SessionStats struct {
	// Requests is the total number of requests submitted.
	Requests uint64
	// Coalesced counts requests served by joining an identical in-flight
	// request instead of executing.
	Coalesced uint64
	// Retries counts retry attempts taken by the bounded backoff ladder
	// (beyond first attempts).
	Retries uint64
	// Buckets counts coalesced shape-family buckets served via
	// InferBucketCtx, and BucketMembers the requests inside them (each
	// bucket consumed ONE admission for BucketMembers/Buckets requests
	// on average — the cross-request amortization ratio).
	Buckets, BucketMembers uint64
	// Health is the model's current health state (breaker-judged).
	Health resilience.HealthState
	// Breaker snapshots the circuit breaker: cumulative faults and
	// successes, trips, and re-verification outcomes.
	Breaker resilience.BreakerStats
	// Admission snapshots the overload gate: in-flight/queued counts,
	// live arena-byte reservation, and shed counters.
	Admission resilience.AdmissionStats
	// Cache snapshots the shared Compiled's cache counters.
	Cache CacheStats
}

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	bs := s.brk.Stats()
	return SessionStats{
		Requests:      s.requests.Load(),
		Coalesced:     s.coalesced.Load(),
		Retries:       s.retries.Load(),
		Buckets:       s.buckets.Load(),
		BucketMembers: s.bucketMembers.Load(),
		Health:    bs.State,
		Breaker:   bs,
		Admission: s.adm.Stats(),
		Cache:     s.c.CacheStats(),
	}
}
