package sod2

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/frameworks"
)

// CacheStats snapshots a compiled model's runtime-cache effectiveness
// (trace memo and shape-keyed plan cache hit/miss counters).
type CacheStats = frameworks.CacheStats

// Invalidate drops the compiled model's memoized runtime artifacts —
// the (sample, policy) trace memo and the shape-keyed plan cache. Call
// it between experiments, and after mutating any compiled artifact in
// place. Cumulative hit/miss counters survive.
func (c *Compiled) Invalidate() { c.inner.Invalidate() }

// CacheStats snapshots the compiled model's cache counters.
func (c *Compiled) CacheStats() CacheStats { return c.inner.Stats() }

// SessionOptions configure a serving session.
type SessionOptions struct {
	// Device is the analytic device profile (SD888CPU when zero).
	Device Device
	// Workers bounds InferBatch's fan-out (GOMAXPROCS when 0).
	Workers int
	// Guard options applied to every request (per-request context and
	// hooks are not supported through a session; use InferGuarded).
	ArenaBudget  int64
	MaxLoopIters int64
	Strict       bool
}

// Session is the concurrent serving facade over one compiled model: any
// number of goroutines may call InferConcurrent/InferSample/InferBatch
// on one Session. The session owns nothing mutable beyond counters and
// the in-flight request table — all shape-dependent memoization (plan
// cache, arena pooling) lives on the shared Compiled, so several
// Sessions over one model share those caches.
//
// Requests carrying the same non-zero Sample.ID that are in flight at
// the same time are coalesced: one guarded execution serves all of them
// (the singleflight dedup of a hot request). Coalesced callers share the
// output tensors and must treat them as read-only.
type Session struct {
	c       *Compiled
	dev     Device
	workers int
	gopts   GuardOptions

	mu       sync.Mutex
	inflight map[uint64]*inferFlight

	requests  atomic.Uint64
	coalesced atomic.Uint64
}

type inferFlight struct {
	done chan struct{}
	out  map[string]*Tensor
	rep  Report
	err  error
}

// NewSession builds a serving session over a compiled model.
func (c *Compiled) NewSession(opts SessionOptions) *Session {
	var zero Device
	if opts.Device == zero {
		opts.Device = SD888CPU
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Session{
		c:       c,
		dev:     opts.Device,
		workers: opts.Workers,
		gopts: GuardOptions{
			ArenaBudget:  opts.ArenaBudget,
			MaxLoopIters: opts.MaxLoopIters,
			Strict:       opts.Strict,
		},
		inflight: map[uint64]*inferFlight{},
	}
}

// InferConcurrent executes one set of inputs under the session's device
// and guard options. Safe to call from any number of goroutines; the
// returned Report carries the cache-hit tier (PlanCacheHit) and any
// degradations taken.
func (s *Session) InferConcurrent(inputs map[string]*Tensor) (map[string]*Tensor, Report, error) {
	s.requests.Add(1)
	return s.c.inferOn(inputs, s.dev, s.gopts)
}

// InferSample executes one workload sample. Samples with a non-zero ID
// coalesce with identical in-flight requests: N concurrent goroutines
// submitting the same sample share one guarded execution (and its
// outputs, which they must treat as read-only).
func (s *Session) InferSample(sample Sample) (map[string]*Tensor, Report, error) {
	if sample.ID == 0 {
		return s.InferConcurrent(sample.Inputs)
	}
	s.requests.Add(1)
	s.mu.Lock()
	if fl, ok := s.inflight[sample.ID]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-fl.done
		return fl.out, fl.rep, fl.err
	}
	fl := &inferFlight{done: make(chan struct{})}
	s.inflight[sample.ID] = fl
	s.mu.Unlock()

	fl.out, fl.rep, fl.err = s.c.inferSample(sample, s.dev, s.gopts)
	s.mu.Lock()
	delete(s.inflight, sample.ID)
	s.mu.Unlock()
	close(fl.done)
	return fl.out, fl.rep, fl.err
}

// BatchResult is one request's outcome within an InferBatch fan-out.
type BatchResult struct {
	// Index is the request's position in the submitted slice.
	Index int
	// Outputs are the inference outputs (nil on error).
	Outputs map[string]*Tensor
	// Report is the per-request latency/memory/cache report.
	Report Report
	// Err is the request's failure, if any (other requests proceed).
	Err error
}

// InferBatch fans the samples out over the session's worker pool and
// returns one result per sample, in submission order. A failed request
// records its error without affecting the rest of the batch.
func (s *Session) InferBatch(samples []Sample) []BatchResult {
	results := make([]BatchResult, len(samples))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(samples) {
		workers = len(samples)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out, rep, err := s.InferSample(samples[i])
				results[i] = BatchResult{Index: i, Outputs: out, Report: rep, Err: err}
			}
		}()
	}
	for i := range samples {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// SessionStats describes a session's request flow and the shared model
// caches behind it.
type SessionStats struct {
	// Requests is the total number of requests submitted.
	Requests uint64
	// Coalesced counts requests served by joining an identical in-flight
	// request instead of executing.
	Coalesced uint64
	// Cache snapshots the shared Compiled's cache counters.
	Cache CacheStats
}

// Stats snapshots the session counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Requests:  s.requests.Load(),
		Coalesced: s.coalesced.Load(),
		Cache:     s.c.CacheStats(),
	}
}
