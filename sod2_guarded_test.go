package sod2

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// The facade-level degradation contract: an input outside the analyzed
// range completes through a fallback tier, the report says so, and the
// result matches the unplanned reference execution.
func TestFacadeDegradedInferMatchesReference(t *testing.T) {
	b, err := BuildModel("YOLO-V6")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	inputs := b.Inputs(tensor.NewRNG(3), 225, 0.5) // 225 % 32 != 0

	outs, rep, err := c.Infer(inputs)
	if err != nil {
		t.Fatalf("degraded inference should complete: %v", err)
	}
	if rep.FallbackTier != TierDynamic || len(rep.Degradations) == 0 {
		t.Fatalf("fallback not recorded: tier=%v degradations=%v", rep.FallbackTier, rep.Degradations)
	}
	if !strings.Contains(rep.Degradations[0].Reason, "% 32") {
		t.Errorf("degradation reason should quote the fact: %q", rep.Degradations[0].Reason)
	}

	ref, err := RunGraph(c.Graph(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref {
		if got := outs[name]; got == nil || !tensor.AllClose(got, want, 1e-5) {
			t.Errorf("degraded output %q diverges from reference", name)
		}
	}
}

func TestFacadeStrictRejectsContractViolation(t *testing.T) {
	b, _ := BuildModel("YOLO-V6")
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	inputs := b.Inputs(tensor.NewRNG(3), 225, 0.5)
	_, _, err = c.InferGuarded(inputs, GuardOptions{Strict: true})
	if !errors.Is(err, ErrContract) {
		t.Fatalf("want ErrContract, got %v", err)
	}
	var ce *ContractError
	if !errors.As(err, &ce) || ce.Symbol == "" {
		t.Fatalf("violation should name the symbol: %v", err)
	}
}

func TestFacadeInferCtxCancelled(t *testing.T) {
	b, _ := BuildModel("CodeBERT")
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = c.InferCtx(ctx, b.Inputs(tensor.NewRNG(3), 64, 0.5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestFacadeContractExposed(t *testing.T) {
	b, _ := BuildModel("YOLO-V6")
	c, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	var facts []Fact
	facts = c.Contract().Facts
	if len(facts) == 0 {
		t.Fatal("YOLO contract should carry analyzed facts")
	}
}
