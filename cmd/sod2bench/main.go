// Command sod2bench regenerates the paper's evaluation tables and
// figures (Tables 1, 5–7; Figures 5–13; the §4.4.1 memory-plan
// ablation). Absolute numbers come from the analytic device model over
// real executed traces; the shapes of the results are the reproduction
// target (see EXPERIMENTS.md).
//
// Usage:
//
//	sod2bench -exp all              # everything (paper order)
//	sod2bench -exp table5 -samples 12
//	sod2bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	samples := flag.Int("samples", 6, "input samples per model (paper uses 50)")
	seed := flag.Uint64("seed", 20240427, "workload RNG seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parSnap := flag.String("parallel-snapshot", "", "write the wavefront-parallel JSON snapshot (BENCH_parallel.json) to this file and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}
	s := bench.NewSuite(bench.Options{Samples: *samples, Seed: *seed, Out: os.Stdout})
	if *parSnap != "" {
		f, err := os.Create(*parSnap)
		if err == nil {
			err = s.WriteParallelSnapshot(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sod2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := s.Run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "sod2bench: %v\n", err)
		os.Exit(1)
	}
}
