// Command sod2bench regenerates the paper's evaluation tables and
// figures (Tables 1, 5–7; Figures 5–13; the §4.4.1 memory-plan
// ablation). Absolute numbers come from the analytic device model over
// real executed traces; the shapes of the results are the reproduction
// target (see EXPERIMENTS.md).
//
// Usage:
//
//	sod2bench -exp all              # everything (paper order)
//	sod2bench -exp table5 -samples 12
//	sod2bench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	samples := flag.Int("samples", 6, "input samples per model (paper uses 50)")
	seed := flag.Uint64("seed", 20240427, "workload RNG seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parSnap := flag.String("parallel-snapshot", "", "write the wavefront-parallel JSON snapshot (BENCH_parallel.json) to this file and exit")
	quantSnap := flag.String("quant-snapshot", "", "write the quantized-serving JSON snapshot (BENCH_quant.json) to this file and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Experiments(), "\n"))
		return
	}
	s := bench.NewSuite(bench.Options{Samples: *samples, Seed: *seed, Out: os.Stdout})
	if *parSnap != "" {
		writeSnapshot(*parSnap, s.WriteParallelSnapshot)
		return
	}
	if *quantSnap != "" {
		writeSnapshot(*quantSnap, s.WriteQuantSnapshot)
		return
	}
	if err := s.Run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "sod2bench: %v\n", err)
		os.Exit(1)
	}
}

// writeSnapshot creates path and streams one suite snapshot into it.
func writeSnapshot(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sod2bench: %v\n", err)
		os.Exit(1)
	}
}
