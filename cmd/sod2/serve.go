package main

// serve: the network front-end subcommand, plus the HTTP mode of
// serve-bench. Kept apart from main.go so the CLI surface of the paper
// pipeline (analyze/compile/run) stays readable.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/models"
	"repro/internal/server"
	"repro/internal/workload"

	sod2 "repro"
)

// resolveServeModels parses the -model value for serve: a single name,
// a comma-separated list, or "all".
func resolveServeModels(list string) []*models.Builder {
	if list == "all" {
		return models.All()
	}
	var out []*models.Builder
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		b, ok := models.Get(name)
		if !ok {
			fail(fmt.Errorf("unknown model %q", name))
		}
		out = append(out, b)
	}
	return out
}

// bootServer compiles (or store-boots) each model and wraps the
// sessions in the HTTP front-end.
func bootServer(builders []*models.Builder, device, storeDir string,
	batchWindow time.Duration, batchMax, maxConc, maxQueue int,
	deadline time.Duration, qps float64, burst int) (*server.Server, []server.Model) {
	dev, ok := sod2.DeviceByName(device)
	if !ok {
		fail(fmt.Errorf("unknown device %q", device))
	}
	var st *sod2.ArtifactStore
	if storeDir != "" {
		var err error
		if st, err = sod2.OpenStore(storeDir); err != nil {
			fail(err)
		}
	}
	var served []server.Model
	for _, b := range builders {
		var c *sod2.Compiled
		var vrep *sod2.VerifyReport
		var err error
		if st != nil {
			var info sod2.BootInfo
			c, vrep, info, err = sod2.CompileStoredSched(b, st, device, sod2.SchedConfig{Device: dev})
			if err == nil {
				printBoot(info)
			}
		} else {
			c, vrep, err = sod2.CompileVerified(b)
		}
		if err != nil {
			fail(err)
		}
		mode := "per-shape plan cache"
		if vrep.Mem.Proven {
			mode = "region-proven shape-family serving"
		}
		fmt.Printf("  %-18s %s\n", b.Name, mode)
		sess := c.NewSession(sod2.SessionOptions{
			Device: dev,
			Admission: sod2.AdmissionConfig{
				MaxConcurrent: maxConc,
				MaxQueue:      maxQueue,
			},
			Retry:          sod2.RetryPolicy{MaxAttempts: 2},
			RequestTimeout: deadline,
		})
		served = append(served, server.Model{Name: b.Name, Compiled: c, Session: sess})
	}
	srv, err := server.New(served, server.Config{
		Batch: server.BatchConfig{Window: batchWindow, MaxBatch: batchMax},
		Quota: server.QuotaConfig{RatePerSec: qps, Burst: burst},
	})
	if err != nil {
		fail(err)
	}
	return srv, served
}

// serveCmd boots the HTTP serving front-end over one or more models and
// runs until SIGTERM/SIGINT, then drains gracefully: readiness flips
// first (load balancers stop routing), a grace period passes, the
// listener closes, pending batch buckets flush, and the sessions close.
func serveCmd(modelList, device, addr, storeDir string,
	batchWindow time.Duration, batchMax, maxConc, maxQueue int,
	deadline time.Duration, qps float64, burst int,
	drainGrace, drainTimeout time.Duration) {
	builders := resolveServeModels(modelList)
	fmt.Printf("booting %d model(s):\n", len(builders))
	srv, _ := bootServer(builders, device, storeDir,
		batchWindow, batchMax, maxConc, maxQueue, deadline, qps, burst)

	hs := srv.HTTPServer(addr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("serving on http://%s (batch window %v, POST /v1/models/{name}/infer)\n",
		ln.Addr(), batchWindow)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		stop()
		fail(err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: flip readiness immediately so /readyz reports 503
	// while the listener still answers probes, wait out the grace
	// period, then stop accepting and flush/close everything.
	fmt.Fprintf(os.Stderr, "sod2 serve: signal received, draining (grace %v)\n", drainGrace)
	srv.StartDraining()
	time.Sleep(drainGrace)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "sod2 serve: http shutdown: %v\n", err)
	}
	if err := srv.Drain(dctx); err != nil {
		fail(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "sod2 serve: drained cleanly")
}

// sampleCmd emits one wire-format InferRequest JSON body for a model on
// stdout — the curl/CI companion of serve:
//
//	sod2 sample -model CodeBERT | curl -sd @- localhost:8080/v1/models/CodeBERT/infer
func sampleCmd(name string, size int64, gate float64, seed uint64) {
	b, ok := models.Get(name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", name))
	}
	if size == 0 {
		size = b.MinSize
	}
	s := workload.Fixed(b, 1, size, float32(gate), seed)[0]
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(server.EncodeInputs(s.Inputs)); err != nil {
		fail(err)
	}
}

// percentile picks the p-th percentile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// httpBenchPass drives one serving configuration over the wire and
// returns its latency distribution plus the amortization counters.
type httpBenchPass struct {
	label      string
	wall       time.Duration
	latencies  []time.Duration
	served     int
	shed       int
	failed     int
	admissions uint64
	buckets    uint64
	members    uint64
}

func runHTTPBenchPass(label string, b *models.Builder, device, storeDir string,
	requests, workers, distinct, maxConc, maxQueue int, deadline time.Duration,
	batchWindow time.Duration, batchMax int) httpBenchPass {
	srv, served := bootServer([]*models.Builder{b}, device, storeDir,
		batchWindow, batchMax, maxConc, maxQueue, deadline, 0, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	hs := srv.HTTPServer("")
	go hs.Serve(ln)
	url := fmt.Sprintf("http://%s/v1/models/%s/infer", ln.Addr(), b.Name)

	pool := workload.Samples(b, distinct, 42)
	bodies := make([][]byte, len(pool))
	for i, s := range pool {
		bodies[i], err = json.Marshal(server.EncodeInputs(s.Inputs))
		if err != nil {
			fail(err)
		}
	}

	pass := httpBenchPass{label: label, latencies: make([]time.Duration, 0, requests)}
	var mu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for i := range jobs {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					pass.failed++
				case resp.StatusCode == http.StatusOK:
					pass.served++
					pass.latencies = append(pass.latencies, lat)
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					pass.shed++
				default:
					pass.failed++
				}
				mu.Unlock()
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	pass.wall = time.Since(start)

	st := served[0].Session.Stats()
	pass.admissions = st.Admission.Admitted
	pass.buckets = st.Buckets
	pass.members = st.BucketMembers

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.StartDraining()
	hs.Shutdown(dctx)
	if err := srv.Drain(dctx); err != nil {
		fail(err)
	}
	sort.Slice(pass.latencies, func(i, j int) bool { return pass.latencies[i] < pass.latencies[j] })
	return pass
}

func (p httpBenchPass) print(requests int) {
	fmt.Printf("%-14s wall %8v   %7.1f req/s   served %d  shed %d  failed %d\n",
		p.label+":", p.wall.Round(time.Millisecond),
		float64(requests)/p.wall.Seconds(), p.served, p.shed, p.failed)
	fmt.Printf("%-14s p50 %v   p90 %v   p99 %v\n", "",
		percentile(p.latencies, 0.50).Round(10*time.Microsecond),
		percentile(p.latencies, 0.90).Round(10*time.Microsecond),
		percentile(p.latencies, 0.99).Round(10*time.Microsecond))
	ratio := 0.0
	if p.buckets > 0 {
		ratio = float64(p.members) / float64(p.buckets)
	}
	fmt.Printf("%-14s admissions %d   buckets %d (avg %.1f members — requests per reservation)\n",
		"", p.admissions, p.buckets, ratio)
}

// httpBenchCmd is serve-bench -http: the same request stream measured
// through the wire twice — per-request serving vs shape-family batched
// serving — printing the throughput and latency-percentile comparison
// the batching layer is justified by.
func httpBenchCmd(name, device string, requests, workers, distinct,
	maxConc, maxQueue int, deadline time.Duration, storeDir string,
	batchWindow time.Duration, batchMax int) {
	b, ok := models.Get(name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", name))
	}
	if distinct < 1 {
		distinct = 1
	}
	if batchWindow <= 0 {
		batchWindow = 2 * time.Millisecond
	}
	fmt.Printf("http bench: model=%s requests=%d workers=%d distinct=%d batch window=%v max=%d\n",
		name, requests, workers, distinct, batchWindow, batchMax)

	per := runHTTPBenchPass("per-request", b, device, storeDir,
		requests, workers, distinct, maxConc, maxQueue, deadline, 0, 0)
	batched := runHTTPBenchPass("batched", b, device, storeDir,
		requests, workers, distinct, maxConc, maxQueue, deadline, batchWindow, batchMax)

	per.print(requests)
	batched.print(requests)
	if per.wall > 0 && batched.wall > 0 {
		fmt.Printf("batched/per-request throughput: %.2fx\n",
			(float64(requests)/batched.wall.Seconds())/(float64(requests)/per.wall.Seconds()))
	}
}
