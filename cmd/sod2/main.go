// Command sod2 is the reproduction's CLI: it compiles and runs the ten
// evaluation models through the full SoD² pipeline and exposes the
// intermediate artifacts (RDP analysis, fusion plan, execution plan).
//
// Usage:
//
//	sod2 models                         # list the ten evaluation models
//	sod2 analyze -model CodeBERT        # dump the RDP fixed point
//	sod2 compile -model YOLO-V6         # fusion/plan/MVC summary
//	sod2 run -model SkipNet -size 256   # execute one inference + report
//	sod2 serve -model CodeBERT -addr :8080   # HTTP serving front-end
//	sod2 sample -model CodeBERT         # wire-format request body for curl
//	sod2 serve-bench -model BERT -requests 64 -workers 4
//	sod2 serve-bench -model BERT -http  # batched vs per-request HTTP serving
//	sod2 lint -model YOLO-V6            # static verifier + lint diagnostics
//	sod2 lint -model all                # every model (CI runs this)
//	sod2 dot -model DGNet               # Graphviz rendering of the graph
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/frameworks"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/rdp"
	"repro/internal/tensor"
	"repro/internal/workload"

	sod2 "repro"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sod2 <models|analyze|compile|run|serve|sample|serve-bench|lint|dot|export|classify> [flags]")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	modelName := fs.String("model", "CodeBERT", "model name (see `sod2 models`)")
	size := fs.Int64("size", 0, "dynamic input extent (0 = model minimum)")
	gate := fs.Float64("gate", 0.5, "control-flow gate activity in [0,1]")
	device := fs.String("device", "sd888-cpu", "device profile: sd888-cpu|sd888-gpu|sd835-cpu|sd835-gpu")
	requests := fs.Int("requests", 64, "serve-bench: total requests to issue")
	workers := fs.Int("workers", 4, "serve-bench: concurrent workers")
	distinct := fs.Int("distinct", 8, "serve-bench: distinct samples cycled through the request stream")
	maxConc := fs.Int("max-concurrent", 0, "serve-bench: admission concurrency cap (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "serve-bench: bounded admission queue past the concurrency cap")
	deadline := fs.Duration("deadline", 0, "serve-bench: per-request deadline (0 = none)")
	faultEvery := fs.Int64("fault-every", 0, "serve-bench: inject a kernel fault every Nth launch (0 = off; exercises retry/breaker/quarantine)")
	parallel := fs.Int("parallel", 0, "serve-bench: wavefront-parallel worker pool per request (0 = sequential)")
	schedCap := fs.Float64("sched-cap", 0, "serve-bench: live-byte cap factor k for the width-aware SEP search (0 = device default; 1 = memory-minimal order)")
	dtype := fs.String("dtype", "f32", "serve-bench: weight storage format — f32, int8, q4_0, or q4_1 (quantized formats serve under the model's accuracy-drift contract)")
	schedWorkers := fs.Int("sched-workers", 0, "serve-bench: worker count candidate schedules are scored at (0 = default)")
	storeDir := fs.String("store", "", "serve-bench: compiled-artifact store directory (warm-boots from saved artifacts; cold compiles save into it)")
	fleet := fs.Bool("fleet", false, "serve-bench: serve all models from one process behind a shared admission gate")
	memBudget := fs.Int64("mem-budget", 0, "serve-bench -fleet: shared arena-byte admission budget (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "lint: emit machine-readable JSON reports instead of text")
	specialize := fs.Bool("specialize", false, "lint: print the specialization dry-run diff per model (what the region-proven specializer changed and why)")
	addr := fs.String("addr", "127.0.0.1:8080", "serve: listen address")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "serve / serve-bench -http: cross-request coalescing window (0 = per-request serving)")
	batchMax := fs.Int("batch-max", 8, "serve / serve-bench -http: flush a shape-family bucket at this size")
	qps := fs.Float64("qps", 0, "serve: per-client token-bucket rate (0 = no quota)")
	burst := fs.Int("burst", 0, "serve: per-client token-bucket burst (0 = derived from -qps)")
	drainGrace := fs.Duration("drain-grace", 2*time.Second, "serve: readiness-flip to listener-close grace period on SIGTERM")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "serve: bound on flushing buckets and closing sessions")
	seed := fs.Uint64("seed", 42, "sample: RNG seed for the generated inputs")
	httpMode := fs.Bool("http", false, "serve-bench: measure over the wire — batched vs per-request HTTP serving")
	_ = fs.Parse(os.Args[2:])

	// Resource flags must be sane before any subcommand consumes them: a
	// negative cap is a configuration error, not "unlimited".
	if *maxConc < 0 || *maxQueue < 0 || *deadline < 0 {
		fmt.Fprintf(os.Stderr, "sod2: -max-concurrent (%d), -max-queue (%d), and -deadline (%v) must be non-negative\n",
			*maxConc, *maxQueue, *deadline)
		usage()
	}

	switch cmd {
	case "models":
		listModels()
	case "analyze":
		withModel(*modelName, analyzeCmd)
	case "compile":
		withModel(*modelName, compileCmd)
	case "run":
		runCmd(*modelName, *size, float32(*gate), *device)
	case "serve":
		serveCmd(*modelName, *device, *addr, *storeDir,
			*batchWindow, *batchMax, *maxConc, *maxQueue, *deadline,
			*qps, *burst, *drainGrace, *drainTimeout)
	case "sample":
		sampleCmd(*modelName, *size, *gate, *seed)
	case "serve-bench":
		switch {
		case *httpMode:
			httpBenchCmd(*modelName, *device, *requests, *workers, *distinct,
				*maxConc, *maxQueue, *deadline, *storeDir, *batchWindow, *batchMax)
		case *fleet:
			fleetBenchCmd(*storeDir, *requests, *workers, *maxConc, *maxQueue, *memBudget)
		default:
			serveBenchCmd(*modelName, *device, *requests, *workers, *distinct,
				*maxConc, *maxQueue, *deadline, *faultEvery, *parallel, *storeDir,
				*schedCap, *schedWorkers, *dtype)
		}
	case "lint":
		lintCmd(*modelName, *jsonOut, *specialize)
	case "dot":
		withModel(*modelName, func(b *models.Builder) {
			fmt.Print(b.Build().DOT())
		})
	case "export":
		withModel(*modelName, func(b *models.Builder) {
			if err := b.Build().WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
		})
	case "classify":
		classifyCmd()
	default:
		usage()
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sod2: %v\n", err)
	os.Exit(1)
}

func withModel(name string, f func(b *models.Builder)) {
	b, ok := models.Get(name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", name))
	}
	f(b)
}

// classifyCmd prints the operator registry grouped by dynamism class —
// this repository's rendering of the paper's Table 2.
func classifyCmd() {
	byClass := map[ops.DynClass][]string{}
	for _, t := range ops.Types() {
		byClass[ops.ClassOf(t)] = append(byClass[ops.ClassOf(t)], t)
	}
	for c := ops.ISDO; c <= ops.EDO; c++ {
		fmt.Printf("%s (%d ops):\n", c, len(byClass[c]))
		for _, t := range byClass[c] {
			fmt.Printf("  %s\n", t)
		}
	}
}

// lintCmd runs the static plan verifier + graph lint over one model (or
// all of them) and prints the stable diagnostics report — the same text
// the golden-snapshot tests pin. -json switches to the machine-readable
// form (same findings, stable field order); -specialize appends the
// specialization dry-run diff. Exits non-zero when any Error-severity
// diagnostic is found, so CI can gate on it.
func lintCmd(name string, jsonOut, specialize bool) {
	targets := models.All()
	if name != "all" {
		b, ok := models.Get(name)
		if !ok {
			fail(fmt.Errorf("unknown model %q", name))
		}
		targets = []*models.Builder{b}
	}
	errors := 0
	for i, b := range targets {
		if i > 0 && !jsonOut {
			fmt.Println()
		}
		c, rep, err := frameworks.CompileVerified(b)
		if err != nil {
			fail(err)
		}
		if jsonOut {
			s, jerr := rep.FormatJSON()
			if jerr != nil {
				fail(jerr)
			}
			fmt.Print(s)
		} else {
			fmt.Print(rep.Format())
		}
		if specialize && !jsonOut {
			printSpecDiff(c)
		}
		errors += rep.Errors()
	}
	if errors > 0 {
		fmt.Fprintf(os.Stderr, "sod2 lint: %d error-severity diagnostics\n", errors)
		os.Exit(1)
	}
}

// printSpecDiff renders the specialization dry-run diff: every decision
// the region-proven specializer took for this model and its structural
// consequence, against the pre-specialization graph. Nothing here is
// persisted — lint compiles in memory only.
func printSpecDiff(c *frameworks.Compiled) {
	cert := c.SpecCert
	if cert == nil {
		fmt.Println("specialize diff: specialization disabled")
		return
	}
	fmt.Printf("specialize diff: %s\n", cert.Summary())
	for _, br := range cert.Branches {
		status := "pruned"
		if !br.Applied {
			status = "provable but structurally infeasible"
		}
		fmt.Printf("  branch %-24s %s arm %d %s (region-dependent=%v)\n",
			br.Node, br.Op, br.Taken, status, br.RegionDep)
	}
	for _, cv := range cert.Constified {
		fmt.Printf("  const  %-24s = %v\n", cv.Value, cv.Ints)
	}
	for _, lb := range cert.LoopBounds {
		fmt.Printf("  loop   %-24s static max trip %d\n", lb.Node, lb.MaxTrip)
	}
	for _, nw := range cert.Narrowings {
		fmt.Printf("  mvc    %-24s %s → %s\n", nw.Node,
			strings.Join(nw.Before, ","), strings.Join(nw.After, ","))
	}
	for _, rm := range cert.Removed {
		fmt.Printf("  removed %s\n", rm)
	}
	fmt.Printf("  nodes: %d → %d\n", len(c.OrigGraph.Nodes), len(c.Graph.Nodes))
}

func listModels() {
	fmt.Printf("%-18s %-5s %-11s %s\n", "MODEL", "DYN", "INPUT", "SIZE RANGE")
	for _, b := range models.All() {
		fmt.Printf("%-18s %-5s %-11s %d–%d (step %d)\n",
			b.Name, b.Dynamism, b.Kind, b.MinSize, b.MaxSize, b.SizeStep)
	}
}

func analyzeCmd(b *models.Builder) {
	g := b.Build()
	res, err := rdp.Analyze(g, nil, rdp.Options{})
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Dump())
	st := res.Statistics()
	fmt.Printf("\n%d tensors, %.1f%% resolved, %d iterations, %d backward-resolved\n",
		st.Total, st.ResolvedFraction()*100, res.Iterations, res.BackwardResolved)
	classes := make([]rdp.DimClass, 0, len(st.ByClass))
	for c := range st.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Printf("  %-12s %d\n", c, st.ByClass[c])
	}
}

func compileCmd(b *models.Builder) {
	c, err := frameworks.Compile(b)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model %s: %d ops (%d incl. subgraphs)\n", b.Name, len(c.Graph.Nodes), c.Graph.NumOps())
	fmt.Printf("fusion (RDP):    %d groups, %d internal tensors eliminated\n",
		len(c.FusionRDP.Groups), len(c.FusionRDP.Internal))
	fmt.Printf("fusion (static): %d groups\n", len(c.FusionStatic.Groups))
	fmt.Printf("execution plan:  %d sub-graphs, est. peak %d bytes\n",
		len(c.ExecPlan.Subgraphs), c.ExecPlan.PeakBytes)
	for _, sg := range c.ExecPlan.Subgraphs {
		fmt.Printf("  sub-graph %2d: %2d ops, %-16s versions=%d method=%s\n",
			sg.ID, len(sg.Nodes), sg.Class, sg.Versions, sg.Method)
	}
	fmt.Printf("MVC: %d hotspot ops, %d total code versions\n",
		len(c.MVCPlan.Hotspots), c.MVCPlan.TotalVersions)
}

func runCmd(name string, size int64, gate float32, device string) {
	b, ok := models.Get(name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", name))
	}
	if size == 0 {
		size = b.MinSize
	}
	dev, ok := sod2.DeviceByName(device)
	if !ok {
		dev = sod2.SD888CPU
	}
	c, err := sod2.Compile(b)
	if err != nil {
		fail(err)
	}
	s := workload.Fixed(b, 1, size, gate, 42)[0]
	out, rep, err := c.InferOn(s.Inputs, dev)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model=%s size=%d gate=%.2f device=%s\n", name, size, gate, dev.Name)
	fmt.Printf("latency: %.3f ms   peak memory: %.2f MB\n", rep.LatencyMS,
		float64(rep.PeakMemBytes)/(1<<20))
	if len(rep.Degradations) > 0 {
		fmt.Printf("fallback tier: %s\n", rep.FallbackTier)
		for _, d := range rep.Degradations {
			fmt.Printf("  degraded: %s\n", d.String())
		}
	}
	for phase, ms := range rep.Phases {
		fmt.Printf("  %-10s %.3f ms\n", phase, ms)
	}
	for name, t := range out {
		fmt.Printf("output %s: %v\n", name, t.Shape)
	}
}

// serveBenchCmd drives the concurrent serving facade: `requests`
// inferences cycled over `distinct` samples, fanned out over `workers`
// goroutines, with the shape-keyed plan cache, request coalescing, and
// the resilience layer (admission gate, deadline, retry ladder, circuit
// breaker) on. -fault-every injects periodic kernel faults so the
// breaker/quarantine counters move.
func serveBenchCmd(name, device string, requests, workers, distinct,
	maxConc, maxQueue int, deadline time.Duration, faultEvery int64, parallel int, storeDir string,
	schedCap float64, schedWorkers int, dtype string) {
	b, ok := models.Get(name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", name))
	}
	dev, ok := sod2.DeviceByName(device)
	if !ok {
		fail(fmt.Errorf("unknown device %q", device))
	}
	cfg := sod2.SchedConfig{Device: dev, CapFactor: schedCap, Workers: schedWorkers}
	if dtype != "" && dtype != "f32" && dtype != "float32" {
		dt, ok := sod2.DTypeByName(dtype)
		if !ok || !dt.IsQuantized() {
			fail(fmt.Errorf("unknown weight dtype %q (have f32, int8, q4_0, q4_1)", dtype))
		}
		cfg.Quant = sod2.QuantConfig{Format: dt}
	}
	var c *sod2.Compiled
	var rep *sod2.VerifyReport
	if storeDir != "" {
		st, err := sod2.OpenStore(storeDir)
		if err != nil {
			fail(err)
		}
		var info sod2.BootInfo
		c, rep, info, err = sod2.CompileStoredSched(b, st, device, cfg)
		if err != nil {
			fail(err)
		}
		printBoot(info)
	} else {
		var err error
		c, rep, err = sod2.CompileVerifiedSched(b, cfg)
		if err != nil {
			fail(err)
		}
	}
	if q := c.Quant(); q != nil && q.Tensors > 0 {
		fmt.Printf("quant: %s weights — %d packed (%d skipped), %d → %d bytes (ratio %.3f), model resident %d B, drift budget %.3g abs + %.3g rel\n",
			q.Format, q.Tensors, q.Skipped, q.FloatBytes, q.QuantBytes, q.BytesRatio(),
			c.WeightBytes(), q.Budget.MaxAbs, q.Budget.MaxRel)
	}
	if sp := c.Sched(); sp.CapFactor > 0 && sp.AnchorPeakBytes > 0 {
		fmt.Printf("sched point: k=%.2g @ %d modeled workers — peak %d B (anchor %d B, %+.1f%%)\n",
			sp.CapFactor, sp.Workers, sp.PeakBytes, sp.AnchorPeakBytes,
			100*(float64(sp.PeakBytes)/float64(sp.AnchorPeakBytes)-1))
	}
	if rep.Mem.Proven {
		fmt.Printf("static verify: memory plan proven over region — shape-family serving on\n")
	} else {
		fmt.Printf("static verify: unprovable (%s) — per-shape plan cache\n", rep.Mem.Reason)
	}
	if parallel > 0 {
		if rep.Wave.Proven {
			fmt.Printf("wavefront plan: proven (%d waves, max width %d, widened arena %d bytes) — parallel serving on\n",
				rep.Wave.Waves, rep.Wave.MaxWidth, rep.Wave.ArenaSize)
		} else {
			fmt.Printf("wavefront plan: unproven (%s) — requests run sequentially\n", rep.Wave.Reason)
		}
	}
	if distinct < 1 {
		distinct = 1
	}
	pool := workload.Samples(b, distinct, 42)
	stream := make([]sod2.Sample, requests)
	for i := range stream {
		stream[i] = pool[i%distinct]
	}

	opts := sod2.SessionOptions{
		Device:  dev,
		Workers: workers,
		Admission: sod2.AdmissionConfig{
			MaxConcurrent: maxConc,
			MaxQueue:      maxQueue,
		},
		Retry:           sod2.RetryPolicy{MaxAttempts: 2},
		RequestTimeout:  deadline,
		Parallel:        parallel > 0,
		ParallelWorkers: parallel,
	}
	var hooks *exec.Hooks
	if faultEvery > 0 {
		var launches atomic.Int64
		hooks = &exec.Hooks{PreKernel: func(n *graph.Node, _ []*tensor.Tensor) error {
			if launches.Add(1)%faultEvery == 0 {
				return fmt.Errorf("serve-bench: injected kernel fault at %s", n.Name)
			}
			return nil
		}}
		opts.Hooks = hooks
	}
	sess := c.NewSession(opts)
	start := time.Now()
	results := sess.InferBatch(stream)
	wall := time.Since(start)

	var failed, shed, cancelled, planHits, regionHits, waveRuns int
	worstTier := sod2.TierPlanned
	for _, r := range results {
		if r.Err != nil {
			switch {
			case errors.Is(r.Err, sod2.ErrOverloaded):
				shed++
			case r.Cancelled:
				cancelled++
			default:
				failed++
			}
			continue
		}
		if r.Report.PlanCacheHit {
			planHits++
		}
		if r.Report.RegionCacheHit {
			regionHits++
		}
		if r.Report.Wavefronts > 0 {
			waveRuns++
		}
		if r.Report.FallbackTier > worstTier {
			worstTier = r.Report.FallbackTier
		}
	}
	served := requests - failed - shed - cancelled
	st := sess.Stats()
	fmt.Printf("model=%s device=%s requests=%d workers=%d distinct=%d\n",
		name, dev.Name, requests, workers, distinct)
	fmt.Printf("wall: %v   throughput: %.1f req/s   failed: %d   shed: %d   cancelled: %d   worst tier: %s\n",
		wall.Round(time.Millisecond), float64(requests)/wall.Seconds(), failed, shed, cancelled, worstTier)
	fmt.Printf("region plan: %d/%d request hits (one static proof serves every in-region shape)\n",
		regionHits, served)
	if parallel > 0 {
		fmt.Printf("wavefront parallel: %d/%d requests ran parallel (%d workers per request)\n",
			waveRuns, served, parallel)
	}
	fmt.Printf("plan cache: %d/%d request hits (%d hits / %d misses cumulative, %d entries)\n",
		planHits, served, st.Cache.PlanHits, st.Cache.PlanMisses, st.Cache.PlanEntries)
	fmt.Printf("trace memo: %d hits / %d misses (%d entries)   coalesced in flight: %d\n",
		st.Cache.TraceHits, st.Cache.TraceMisses, st.Cache.TraceEntries, st.Coalesced)
	fmt.Printf("health: %s   breaker: %d faults / %d successes, %d trips, reverify %d pass / %d fail\n",
		st.Health, st.Breaker.Faults, st.Breaker.Successes, st.Breaker.Trips,
		st.Breaker.ReverifyPass, st.Breaker.ReverifyFail)
	fmt.Printf("admission: %d admitted, %d shed (%d concurrency / %d memory), %d abandoned   retries: %d\n",
		st.Admission.Admitted, st.Admission.Shed(), st.Admission.ShedConcurrency,
		st.Admission.ShedMemory, st.Admission.Abandoned, st.Retries)
}

// printBoot renders one model's store-boot outcome.
func printBoot(bi sod2.BootInfo) {
	mode := "cold compile"
	if bi.Warm {
		mode = "warm boot"
	}
	fmt.Printf("  %-18s %-12s %9.2f ms  (verify %7.2f ms)", bi.Model, mode, bi.BootMS, bi.VerifyMS)
	if bi.Saved {
		fmt.Printf("  [artifact saved]")
	}
	if bi.CorruptFallback != nil {
		fmt.Printf("  [corrupt artifact quarantined: %v]", bi.CorruptFallback)
	}
	fmt.Println()
}

// fleetBenchCmd boots every evaluation model into one serving fleet —
// through the artifact store when -store is given, so a second run
// warm-boots — and drives a round-robin request sweep through the
// shared admission gate. The boot table is the cold-start vs warm-boot
// comparison the store exists for.
func fleetBenchCmd(storeDir string, requests, workers, maxConc, maxQueue int, memBudget int64) {
	var st *sod2.ArtifactStore
	if storeDir != "" {
		var err error
		if st, err = sod2.OpenStore(storeDir); err != nil {
			fail(err)
		}
	}
	builders := models.All()
	cfg := sod2.FleetConfig{
		Store: st,
		Admission: sod2.AdmissionConfig{
			MaxConcurrent: maxConc,
			MaxQueue:      maxQueue,
			MemoryBudget:  memBudget,
		},
	}
	bootStart := time.Now()
	f, err := sod2.BootFleet(builders, cfg)
	if err != nil {
		fail(err)
	}
	bootWall := time.Since(bootStart)

	fmt.Printf("fleet boot (%d models):\n", len(builders))
	for _, bi := range f.Boots() {
		printBoot(bi)
	}
	warm, cold := f.WarmCount()
	fmt.Printf("fleet boot: %d warm / %d cold in %v\n", warm, cold, bootWall.Round(time.Millisecond))
	ctr := sod2.BootCounters()
	fmt.Printf("compile counters: %d full compiles, %d warm loads, %d plan searches, %d wave builds, %d verifier runs, %d specializations, %d spec replays\n",
		ctr.FullCompiles, ctr.WarmLoads, ctr.PlanSearches, ctr.WaveBuilds, ctr.VerifyRuns,
		ctr.Specializations, ctr.SpecReplays)
	if st != nil {
		ss := st.Stats()
		fmt.Printf("store: %d saves, %d loads, %d misses, %d corrupt, %d quarantined, %d temps swept\n",
			ss.Saves, ss.Loads, ss.Misses, ss.Corrupt, ss.Quarantined, ss.TempsSwept)
	}

	// Round-robin request sweep across the whole fleet.
	type target struct {
		name   string
		inputs map[string]*tensor.Tensor
	}
	targets := make([]target, len(builders))
	for i, b := range builders {
		targets[i] = target{name: b.Name, inputs: b.Inputs(tensor.NewRNG(42), b.MinSize, 0.5)}
	}
	if workers < 1 {
		workers = 1
	}
	var served, shed, failed atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tg := targets[i%len(targets)]
				_, _, err := f.Infer(tg.name, tg.inputs)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, sod2.ErrOverloaded):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("sweep: %d requests over %d models, %d workers\n", requests, len(targets), workers)
	fmt.Printf("wall: %v   throughput: %.1f req/s   served: %d   shed: %d   failed: %d\n",
		wall.Round(time.Millisecond), float64(requests)/wall.Seconds(), served.Load(), shed.Load(), failed.Load())
	fs := f.Stats()
	names := make([]string, 0, len(fs.PerModel))
	for name := range fs.PerModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := fs.PerModel[name]
		fmt.Printf("  %-18s share %10d B   admitted %5d   shed %4d\n",
			name, ms.ShareBytes, ms.Admitted, ms.Shed)
	}
	fmt.Printf("admission (global): %d admitted, %d shed (%d concurrency / %d memory)\n",
		fs.Global.Admitted, fs.Global.Shed(), fs.Global.ShedConcurrency, fs.Global.ShedMemory)
}
