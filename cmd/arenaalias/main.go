// Command arenaalias runs the repository's static checkers as a
// `go vet` vettool — a multichecker driving two stdlib-only analyzers:
//
//   - arenaalias: arena-backed tensors escaping a function that recycles
//     their storage without Arena.Detach;
//   - ctxfield: context.Context parked in long-lived struct fields
//     outside the sanctioned Options/Config/Session carriers.
//
// Usage:
//
//	go build -o bin/arenaalias ./cmd/arenaalias
//	go vet -vettool=bin/arenaalias ./...
//
// The build environment has no golang.org/x/tools, so this driver
// implements the unitchecker protocol by hand with the standard library:
//
//   - `arenaalias -V=full` prints the tool identity line cmd/go hashes
//     into its cache key;
//   - `arenaalias -flags` prints the tool's flag set as JSON so cmd/go
//     can split vet flags from build flags;
//   - `arenaalias [-json] <file>.cfg` analyzes one package unit: the
//     .cfg file (written by cmd/go) lists the unit's Go files, its
//     import map, and the compiled export data of every dependency,
//     which is all a go/types check needs. Facts are not used, so the
//     VetxOutput file is written empty. Diagnostics go to stderr with
//     exit status 2 (or to stdout as JSON with -json and exit 0).
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint/arenaalias"
	"repro/internal/lint/ctxfield"
)

// config mirrors the fields of cmd/go's vet .cfg JSON that this driver
// needs (unknown fields are ignored).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		// cmd/go requires "<name> version <ver>..." and hashes the line;
		// bump the version when any checker's rules change to invalidate
		// cached vet results. v2: + ctxfield analyzer.
		fmt.Println("arenaalias version v2 stdlib-unitchecker multichecker=arenaalias,ctxfield")
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks for the tool's flags as JSON to validate the vet
		// command line. Only -json is meaningful here.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON"}]`)
		return
	}
	jsonOut := false
	if len(args) > 0 && (args[0] == "-json" || args[0] == "-json=true") {
		jsonOut = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: arenaalias [-json] <unit>.cfg")
		os.Exit(1)
	}
	if err := run(args[0], jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "arenaalias: %v\n", err)
		os.Exit(1)
	}
}

func run(cfgPath string, jsonOut bool) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// The facts file must exist even though this checker exports none:
	// cmd/go records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil // dependency unit: only facts were wanted
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data cmd/go compiled:
	// source import path → canonical path (ImportMap) → .a/.x file
	// (PackageFile), read by the gc importer.
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiled.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tcfg := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	if _, err := tcfg.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	// The multichecker proper: run every analyzer over the one
	// type-checked unit, keeping findings grouped by analyzer name.
	byAnalyzer := map[string][]finding{
		"arenaalias": {},
		"ctxfield":   {},
	}
	total := 0
	for _, d := range arenaalias.Check(fset, files, info) {
		byAnalyzer["arenaalias"] = append(byAnalyzer["arenaalias"],
			finding{Pos: d.Pos, Message: d.Message})
		total++
	}
	for _, d := range ctxfield.Check(fset, cfg.ImportPath, files, info) {
		byAnalyzer["ctxfield"] = append(byAnalyzer["ctxfield"],
			finding{Pos: d.Pos, Message: d.Message})
		total++
	}
	if jsonOut {
		return printJSON(cfg.ID, byAnalyzer)
	}
	for _, name := range []string{"arenaalias", "ctxfield"} {
		for _, d := range byAnalyzer[name] {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, name, d.Message)
		}
	}
	if total > 0 {
		os.Exit(2) // the unitchecker convention: diagnostics were reported
	}
	return nil
}

// finding is one diagnostic, analyzer-agnostic.
type finding struct {
	Pos     token.Position
	Message string
}

// printJSON emits the unitchecker JSON shape:
// {"pkgID": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSON(pkgID string, byAnalyzer map[string][]finding) error {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	out := map[string]map[string][]jsonDiag{pkgID: {}}
	for name, diags := range byAnalyzer {
		out[pkgID][name] = []jsonDiag{}
		for _, d := range diags {
			out[pkgID][name] = append(out[pkgID][name],
				jsonDiag{Posn: d.Pos.String(), Message: d.Message})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
