// Package sod2 is the public facade of this repository's reproduction of
// "SoD²: Statically Optimizing Dynamic Deep Neural Network Execution"
// (Niu, Agrawal, Ren — ASPLOS 2024). It exposes the complete pipeline:
//
//	model := sod2.BuildModel("CodeBERT")          // or assemble a Graph
//	compiled, _ := sod2.Compile(model)            // RDP → fusion → SEP → DMP → MVC
//	report, _ := compiled.Infer(inputs)           // execute + latency/memory report
//
// Underneath sit the subsystems the paper describes, each usable on its
// own through this package:
//
//   - Analyze: the RDP data-flow analysis (§4.1) over a computational graph.
//   - Fuse: RDP-enabled operator fusion (§4.2).
//   - PlanExecution: static execution-order planning (§4.3).
//   - PlanMemory: the peak-first dynamic memory plan (§4.4.1).
//   - Engines: SoD² plus the four baseline framework policies used by the
//     evaluation (ORT, MNN, TVM-Nimble, TFLite).
//
// The `internal/` packages carry the implementations; examples/ and
// cmd/ demonstrate the API end to end.
package sod2

import (
	"context"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/frameworks"
	"repro/internal/fusion"
	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/memplan"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/rdp"
	"repro/internal/resilience"
	"repro/internal/staticverify"
	"repro/internal/symbolic"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Re-exported core types so callers need only this package for the
// common pipeline.
type (
	// Graph is the extended computational-graph IR (ONNX-style ops plus
	// the <Switch, Combine> control-flow pair).
	Graph = graph.Graph
	// Node is one operator application.
	Node = graph.Node
	// Tensor is a dense runtime tensor.
	Tensor = tensor.Tensor
	// Shape is the RDP lattice shape (known/symbolic/op-inferred/⊥ dims).
	Shape = lattice.Shape
	// Info pairs a tensor's lattice shape and tracked value.
	Info = lattice.Info
	// Expr is a canonical symbolic integer expression.
	Expr = symbolic.Expr
	// Env binds symbolic dimensions to concrete extents.
	Env = symbolic.Env
	// Device is an analytic device profile (SD888/SD835, CPU/GPU).
	Device = costmodel.Device
	// Report is a per-inference latency/memory report.
	Report = frameworks.Report
	// Sample is one concrete workload input.
	Sample = workload.Sample
	// ModelBuilder describes one of the ten evaluation models.
	ModelBuilder = models.Builder

	// GuardOptions configure a guarded inference (context, budgets,
	// fault-injection hooks, strict mode).
	GuardOptions = frameworks.GuardOptions
	// GuardReport describes how a guarded inference actually ran.
	GuardReport = frameworks.GuardReport
	// OpError is a structured per-kernel failure (panic or kernel error)
	// carrying the node, op type, and input shapes.
	OpError = guard.OpError
	// ContractError is a structured runtime-contract violation.
	ContractError = guard.ContractError
	// Degradation records one guarded-execution fallback.
	Degradation = guard.Degradation
	// Tier identifies an execution tier (planned / dynamic / replan /
	// float32).
	Tier = guard.Tier
	// Fact is one analyzed input property (range or divisibility).
	Fact = guard.Fact

	// DType is a tensor element/storage type, including the packed
	// quantized formats (Int8, Q4_0, Q4_1).
	DType = tensor.DType
	// QuantConfig selects weight-only quantized storage for a compile
	// (SchedConfig.Quant).
	QuantConfig = frameworks.QuantConfig
	// QuantReport describes the quantization pass a compile applied.
	QuantReport = frameworks.QuantReport
	// QuantBudget is a model's accuracy-drift contract for quantized
	// serving.
	QuantBudget = guard.QuantBudget

	// VerifyReport is the static plan verifier's result: execution-plan,
	// liveness, and region-wide memory-plan proofs plus lint diagnostics.
	VerifyReport = staticverify.Report
	// Diagnostic is one structured lint/verifier finding.
	Diagnostic = staticverify.Diagnostic
	// ShapeRegion maps symbolic input dims to their analyzed strided
	// intervals — the set of shapes a static proof covers.
	ShapeRegion = staticverify.Region

	// AdmissionConfig bounds a session's concurrent work (semaphore +
	// bounded queue + arena-byte budget); past capacity, requests shed
	// with ErrOverloaded instead of queueing unboundedly.
	AdmissionConfig = resilience.AdmissionConfig
	// RetryPolicy is the bounded, fallback-tier-aware retry/backoff
	// ladder a session applies to transient execution faults.
	RetryPolicy = resilience.RetryPolicy
	// BreakerConfig tunes the per-model circuit breaker and its health
	// state machine (healthy → degraded → quarantined → probation).
	BreakerConfig = resilience.BreakerConfig
	// HealthState is a model's serving health as judged by the breaker.
	HealthState = resilience.HealthState
	// OverloadError is one shed request (errors.Is(err, ErrOverloaded)).
	OverloadError = resilience.OverloadError
	// AdmissionStats / BreakerStats snapshot the resilience layer.
	AdmissionStats = resilience.AdmissionStats
	BreakerStats   = resilience.BreakerStats
)

// Health states of the serving state machine, in healing order.
const (
	Healthy     = resilience.Healthy
	Degraded    = resilience.Degraded
	Quarantined = resilience.Quarantined
	Probation   = resilience.Probation
)

// Execution tiers, fault sentinels, and hook points re-exported for
// error handling with errors.Is/As.
var (
	TierPlanned = guard.TierPlanned
	TierDynamic = guard.TierDynamic
	TierReplan  = guard.TierReplan
	// TierFloat32 serves a request with the original float32 weights
	// after a quantized run violated its accuracy-drift contract.
	TierFloat32 = guard.TierFloat32
	// ErrPanic marks a contained kernel panic (wrapped in *OpError).
	ErrPanic = guard.ErrPanic
	// ErrContract matches any ContractError.
	ErrContract = guard.ErrContract
	// ErrArenaExhausted reports an arena placement past the byte budget.
	ErrArenaExhausted = exec.ErrArenaExhausted
	// ErrOverloaded matches any admission shed (errors.Is).
	ErrOverloaded = resilience.ErrOverloaded
)

// Tensor storage formats, including the block-quantized weight formats.
const (
	Float32 = tensor.Float32
	Int8    = tensor.Int8
	Q4_0    = tensor.Q4_0
	Q4_1    = tensor.Q4_1
)

// DTypeByName resolves a storage-format name ("float32", "int8",
// "q4_0", "q4_1") to its DType.
var DTypeByName = tensor.DTypeByName

// Device profiles used throughout the evaluation.
var (
	SD888CPU = costmodel.SD888CPU
	SD888GPU = costmodel.SD888GPU
	SD835CPU = costmodel.SD835CPU
	SD835GPU = costmodel.SD835GPU
)

// NodeAttr is a node attribute value.
type NodeAttr = graph.AttrValue

// Attribute constructors, re-exported for graph building.
var (
	IntAttr    = graph.IntAttr
	IntsAttr   = graph.IntsAttr
	FloatAttr  = graph.FloatAttr
	StringAttr = graph.StringAttr
	GraphAttr  = graph.GraphAttr
)

// NewGraph creates an empty computational graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// ReadGraphJSON deserializes a graph written with Graph.WriteJSON.
var ReadGraphJSON = graph.ReadJSON

// Models lists the ten dynamic models of the evaluation (Table 5).
func Models() []*ModelBuilder { return models.All() }

// BuildModel constructs one of the named evaluation models.
func BuildModel(name string) (*ModelBuilder, error) {
	b, ok := models.Get(name)
	if !ok {
		return nil, fmt.Errorf("sod2: unknown model %q", name)
	}
	return b, nil
}

// AnalyzeResult is the RDP fixed point plus reporting helpers.
type AnalyzeResult = rdp.Result

// Analyze runs Rank and Dimension Propagation over g. Overrides may pin
// the shapes of inputs (or, per Fig. 3(b), outputs) by value name.
func Analyze(g *Graph, overrides map[string]Shape) (*AnalyzeResult, error) {
	return rdp.Analyze(g, overrides, rdp.Options{})
}

// FusionPlan is an operator fusion plan.
type FusionPlan = fusion.Plan

// Fuse computes RDP-enabled fusion over an analyzed graph.
func Fuse(g *Graph, infos map[string]Info) *FusionPlan {
	return fusion.Fuse(g, infos, fusion.RDP)
}

// ExecutionPlan is a static execution-order plan.
type ExecutionPlan = plan.Plan

// PlanExecution computes the memory-minimizing operator order (§4.3).
func PlanExecution(g *Graph, infos map[string]Info, fp *FusionPlan) (*ExecutionPlan, error) {
	return plan.Build(g, infos, plan.Options{Fusion: fp})
}

// MemoryPlan assigns arena offsets to intermediate tensors.
type MemoryPlan = memplan.Plan

// PlanMemory runs the peak-first planner over a liveness program derived
// from an executed trace (§4.4.1).
func PlanMemory(g *Graph, trace exec.Trace, internal map[string]bool) *MemoryPlan {
	return memplan.PeakFirst(frameworks.TraceProgram(g, trace, internal))
}

// Compiled is a fully compiled model: RDP results, fusion plan,
// execution plan, and multi-version kernel plan.
type Compiled struct {
	inner *frameworks.Compiled
	eng   *frameworks.SoD2
}

// Compile runs the full SoD² pre-deployment pipeline on a model.
func Compile(b *ModelBuilder) (*Compiled, error) {
	c, err := frameworks.Compile(b)
	if err != nil {
		return nil, err
	}
	return &Compiled{inner: c, eng: frameworks.NewSoD2(frameworks.FullSoD2())}, nil
}

// SchedConfig selects the (peak-memory × makespan) frontier point a
// compile serves: the device profile whose cost model scores the
// candidate orders, the live-byte cap factor k (1 pins the
// memory-minimal anchor; 0 = device default), and the worker count the
// per-wave makespan is modeled at.
type SchedConfig = frameworks.SchedConfig

// SchedPoint records the frontier point a compile selected (cap factor,
// modeled workers, anchor vs chosen peak live bytes, modeled makespan).
// A zero CapFactor means the width-aware search did not run.
type SchedPoint = plan.SchedPoint

// CompileVerifiedSched is CompileVerified with an explicit scheduling
// configuration selecting which (peak-memory × makespan) frontier point
// the compile serves.
func CompileVerifiedSched(b *ModelBuilder, cfg SchedConfig) (*Compiled, *VerifyReport, error) {
	c, rep, err := frameworks.CompileVerifiedSched(b, cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Compiled{inner: c, eng: frameworks.NewSoD2(frameworks.FullSoD2())}, rep, nil
}

// DeviceByName resolves a cost-model device profile by its name
// ("sd888-cpu", "sd888-gpu", "sd835-cpu", "sd835-gpu").
func DeviceByName(name string) (Device, bool) { return costmodel.DeviceByName(name) }

// Sched returns the scheduling point the compile selected.
func (c *Compiled) Sched() SchedPoint { return c.inner.Sched }

// CompileVerified is Compile plus the static plan verifier. When the
// verifier proves the memory plan over the model's whole input region,
// every subsequent inference whose input shapes fall inside the region
// is served with the proven shape-family plan and skips per-shape
// contract and plan verification (Report.RegionCacheHit) — even for
// shapes never seen before. Unprovable models keep per-shape caching;
// the report's diagnostics record why.
func CompileVerified(b *ModelBuilder) (*Compiled, *VerifyReport, error) {
	c, rep, err := frameworks.CompileVerified(b)
	if err != nil {
		return nil, nil, err
	}
	return &Compiled{inner: c, eng: frameworks.NewSoD2(frameworks.FullSoD2())}, rep, nil
}

// Verify runs (and memoizes) the static plan verifier over the compiled
// model, enabling the shape-family serving path when the proofs succeed.
func (c *Compiled) Verify() *VerifyReport { return c.inner.Verify() }

// Quant reports the weight-quantization pass this compile applied, or
// nil for a float32 compile.
func (c *Compiled) Quant() *QuantReport { return c.inner.Quant }

// WeightBytes sums the storage of every model weight as compiled
// (packed bytes for quantized weights, including scale/min tables).
func (c *Compiled) WeightBytes() int64 { return c.inner.WeightBytes() }

// FamilyKey returns the shape-family bucket key for one concrete input
// set (see Session.FamilyKey): the statically proven region key when
// the inputs bind inside the verified region, the per-shape plan key
// otherwise, or "" for unbucketable inputs.
func (c *Compiled) FamilyKey(inputs map[string]*Tensor) (string, bool) {
	return c.inner.FamilyKey(inputs)
}

// Graph returns the compiled model's graph.
func (c *Compiled) Graph() *Graph { return c.inner.Graph }

// Analysis returns the RDP fixed point.
func (c *Compiled) Analysis() *AnalyzeResult { return c.inner.RDPResult }

// Fusion returns the RDP fusion plan.
func (c *Compiled) Fusion() *FusionPlan { return c.inner.FusionRDP }

// Execution returns the static execution plan.
func (c *Compiled) Execution() *ExecutionPlan { return c.inner.ExecPlan }

// Infer executes one set of concrete inputs on the default device
// (Snapdragon 888 CPU) and returns outputs plus the report.
func (c *Compiled) Infer(inputs map[string]*Tensor) (map[string]*Tensor, Report, error) {
	return c.InferOn(inputs, SD888CPU)
}

// InferOn executes on a specific device profile. Execution is guarded:
// inputs are checked against the model's runtime contract, kernel panics
// surface as *OpError, and contract violations degrade to dynamic
// allocation or a full re-plan instead of failing (the report records
// the fallback tier and every degradation taken).
func (c *Compiled) InferOn(inputs map[string]*Tensor, dev Device) (map[string]*Tensor, Report, error) {
	return c.inferOn(inputs, dev, GuardOptions{})
}

func (c *Compiled) inferOn(inputs map[string]*Tensor, dev Device, gopts GuardOptions) (map[string]*Tensor, Report, error) {
	return c.inferSample(workload.Sample{Inputs: inputs}, dev, gopts)
}

// inferSample is the shared guarded-inference path. A sample with a
// non-zero ID additionally engages the engine's trace memo (the cost
// model's per-(sample, policy) execution cache).
func (c *Compiled) inferSample(s Sample, dev Device, gopts GuardOptions) (map[string]*Tensor, Report, error) {
	res, gr, err := c.inner.GuardedRun(s.Inputs, gopts)
	if err != nil {
		return nil, Report{FallbackTier: gr.Tier, Degradations: gr.Degradations}, err
	}
	eng := c.eng
	if gr.Wavefronts > 0 {
		// The guarded run executed wavefront-parallel; model the latency
		// the same way (per-wave makespan instead of sequential trace
		// cost). The engine is stateless, so a per-call copy is cheap.
		par := eng.Opts
		par.ParallelWorkers = gr.ParallelWorkers
		eng = frameworks.NewSoD2(par)
	}
	rep, err := eng.Run(c.inner, s, dev)
	if err != nil {
		return nil, Report{}, err
	}
	if gr.Tier > rep.FallbackTier {
		rep.FallbackTier = gr.Tier
	}
	rep.PlanCacheHit = gr.PlanCacheHit
	rep.RegionCacheHit = gr.RegionCacheHit
	rep.Wavefronts = gr.Wavefronts
	rep.ParallelWorkers = gr.ParallelWorkers
	rep.Degradations = append(gr.Degradations, rep.Degradations...)
	if gr.ReplanMS > 0 {
		if rep.Phases == nil {
			rep.Phases = map[string]float64{}
		}
		rep.Phases["replan"] = gr.ReplanMS
		rep.LatencyMS += gr.ReplanMS
	}
	return res.Outputs, rep, nil
}

// InferGuarded executes with explicit guard options (context, arena
// budget, loop caps, fault-injection hooks, strict mode).
func (c *Compiled) InferGuarded(inputs map[string]*Tensor, opts GuardOptions) (map[string]*Tensor, Report, error) {
	return c.inferOn(inputs, SD888CPU, opts)
}

// InferCtx executes with a context bounding the inference; cancellation
// is honored between nodes, including inside If/Loop bodies.
func (c *Compiled) InferCtx(ctx context.Context, inputs map[string]*Tensor) (map[string]*Tensor, Report, error) {
	return c.inferOn(inputs, SD888CPU, GuardOptions{Ctx: ctx})
}

// Contract returns the model's runtime contract (symbolic input shapes
// plus analyzed range/divisibility facts) for inspection.
func (c *Compiled) Contract() *guard.Contract { return c.inner.Contract() }

// InferWithArena plans the runtime memory arena for the inputs (§4.4.1:
// symbolic shapes bound by the input dims, liveness from the planned
// order, peak-first offsets) and executes into it. The returned arena
// reports the exact linear-memory footprint of the inference.
func (c *Compiled) InferWithArena(inputs map[string]*Tensor) (map[string]*Tensor, *exec.Arena, error) {
	res, arena, err := c.inner.RunWithArena(inputs)
	if err != nil {
		return nil, nil, err
	}
	return res.Outputs, arena, nil
}

// NewSample builds a workload sample for one of the evaluation models.
func NewSample(b *ModelBuilder, size int64, gateBias float32, seed uint64) Sample {
	return workload.Fixed(b, 1, size, gateBias, seed)[0]
}

// RunGraph executes an arbitrary graph directly (topological order, no
// compilation) — the quickest way to evaluate a hand-built graph.
func RunGraph(g *Graph, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	res, err := exec.Run(g, inputs, exec.Options{})
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// Engines returns the five evaluation engines keyed by name.
func Engines() map[string]frameworks.Engine {
	return map[string]frameworks.Engine{
		"SoD2":   frameworks.NewSoD2(frameworks.FullSoD2()),
		"ORT":    frameworks.NewORT(),
		"MNN":    frameworks.NewMNN(),
		"TVM-N":  frameworks.NewTVMN(),
		"TFLite": frameworks.NewTFLite(0),
	}
}
