package sod2

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/tensor"
)

func closeFixture(t *testing.T, hooks *exec.Hooks) (*Session, map[string]*Tensor) {
	t.Helper()
	b, ok := models.Get("CodeBERT")
	if !ok {
		t.Fatal("CodeBERT not registered")
	}
	c, _, err := CompileVerified(b)
	if err != nil {
		t.Fatal(err)
	}
	sess := c.NewSession(SessionOptions{Hooks: hooks})
	inputs := b.Inputs(tensor.NewRNG(1), b.MinSize, 0.5)
	return sess, inputs
}

func TestSessionCloseRejectsNewWork(t *testing.T) {
	sess, inputs := closeFixture(t, nil)
	if _, _, err := sess.InferConcurrent(inputs); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.InferConcurrent(inputs); !errors.Is(err, ErrClosed) {
		t.Errorf("infer after close: want ErrClosed, got %v", err)
	}
	if _, _, err := sess.InferSample(Sample{ID: 42, Inputs: inputs}); !errors.Is(err, ErrClosed) {
		t.Errorf("coalescable infer after close: want ErrClosed, got %v", err)
	}
	res := sess.InferBatch([]Sample{{Inputs: inputs}})
	if !errors.Is(res[0].Err, ErrClosed) {
		t.Errorf("batch after close: want ErrClosed, got %v", res[0].Err)
	}
}

func TestSessionDoubleClose(t *testing.T) {
	sess, _ := closeFixture(t, nil)
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("second close must be a clean no-op: %v", err)
	}
}

func TestSessionCloseDrainsInFlight(t *testing.T) {
	blocked := make(chan struct{})
	proceed := make(chan struct{})
	var first atomic.Bool
	hooks := &exec.Hooks{PreKernel: func(n *Node, in []*Tensor) error {
		if first.CompareAndSwap(false, true) {
			close(blocked)
			<-proceed
		}
		return nil
	}}
	sess, inputs := closeFixture(t, hooks)

	inferDone := make(chan error, 1)
	go func() {
		_, _, err := sess.InferConcurrent(inputs)
		inferDone <- err
	}()
	select {
	case <-blocked:
	case <-time.After(30 * time.Second):
		t.Fatal("request never reached its first kernel")
	}

	// Close with an already-expired deadline: the in-flight request is
	// reported, the session still refuses new work, the straggler keeps
	// running.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := sess.Close(expired)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close past deadline: want DeadlineExceeded, got %v", err)
	}
	if _, _, err := sess.InferConcurrent(inputs); !errors.Is(err, ErrClosed) {
		t.Errorf("session must be closed to new work even after a timed-out drain: %v", err)
	}

	// Release the straggler; a second Close now drains cleanly.
	close(proceed)
	if err := <-inferDone; err != nil {
		t.Fatalf("in-flight request must complete after Close: %v", err)
	}
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
}

func TestSessionCloseWaitsForCompletion(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var first atomic.Bool
	hooks := &exec.Hooks{PreKernel: func(n *Node, in []*Tensor) error {
		if first.CompareAndSwap(false, true) {
			close(started)
			<-release
		}
		return nil
	}}
	sess, inputs := closeFixture(t, hooks)

	done := make(chan error, 1)
	go func() {
		_, _, err := sess.InferConcurrent(inputs)
		done <- err
	}()
	<-started
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	// Close must block until the in-flight request drains; once it
	// returns, the request's result is immediately (or near-immediately)
	// available.
	if err := sess.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close returned but the in-flight request never finished")
	}
}
